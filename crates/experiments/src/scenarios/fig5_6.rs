//! Fig. 5 (shallow buffers) and Fig. 6 (random loss).
//!
//! * Fig. 5a / 6a — topology 3b: one multipath connection over two links;
//!   link 1's buffer (5a) or random-loss rate (6a) is swept; the figure
//!   plots the multipath connection's goodput.
//! * Fig. 5b / 6b — topology 3c: the multipath connection additionally
//!   competes with a single-path connection on link 2 (Vivace against
//!   MPCC, Reno against MPTCP, per §7.2.1); the figure plots the
//!   single-path connection's goodput.

use crate::output::{f2, Figure};
use crate::protocols::{single_path_peer, MULTIPATH_PROTOCOLS};
use crate::runner::{run_seeds_batch, ConnSpec, Scenario};
use crate::ExpConfig;
use mpcc_netsim::link::LinkParams;
use mpcc_simcore::rng::splitmix64;
use mpcc_simcore::SimDuration;

fn durations(cfg: &ExpConfig) -> (SimDuration, SimDuration) {
    (
        cfg.scale(SimDuration::from_secs(60), SimDuration::from_secs(200)),
        cfg.scale(SimDuration::from_secs(15), SimDuration::from_secs(30)),
    )
}

/// Buffer sweep points for link 1, bytes (the paper sweeps 3–375 KB, log
/// scale; its x-axis extends to 10 MB-class buffers for Fig. 12).
fn buffer_points(cfg: &ExpConfig) -> Vec<u64> {
    if cfg.full {
        vec![
            3_000, 6_000, 9_000, 15_000, 30_000, 60_000, 120_000, 375_000,
        ]
    } else {
        vec![3_000, 9_000, 30_000, 60_000, 150_000, 375_000]
    }
}

/// Random-loss sweep points for link 1 (fraction).
fn loss_points(cfg: &ExpConfig) -> Vec<f64> {
    if cfg.full {
        vec![1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1]
    } else {
        vec![1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1]
    }
}

enum Sweep {
    Buffer(u64),
    Loss(f64),
}

fn link1(sweep: &Sweep) -> LinkParams {
    match *sweep {
        Sweep::Buffer(b) => LinkParams::paper_default().with_buffer(b),
        Sweep::Loss(l) => LinkParams::paper_default().with_random_loss(l),
    }
}

/// Runs one sweep on topology 3b (multipath alone) and reports the
/// multipath connection's goodput per protocol.
fn sweep_3b(cfg: &ExpConfig, id: &str, title: &str, sweeps: Vec<(String, Sweep)>) -> Figure {
    let mut columns = vec!["point".to_string()];
    columns.extend(MULTIPATH_PROTOCOLS.iter().map(|s| s.to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut fig = Figure::new(id, title, &col_refs);
    let (duration, warmup) = durations(cfg);
    // Every (sweep point, protocol) pair is an independent job: submit the
    // whole grid as one batch and read results back in submission order.
    let mut scs = Vec::new();
    for (label, sweep) in &sweeps {
        for proto in MULTIPATH_PROTOCOLS {
            scs.push(
                Scenario::new(
                    splitmix64(cfg.seed ^ splitmix64(label.len() as u64)),
                    vec![link1(sweep), LinkParams::paper_default()],
                    vec![ConnSpec::bulk(proto, vec![0, 1])],
                )
                .with_duration(duration, warmup),
            );
        }
    }
    let mut summaries = run_seeds_batch(&cfg.exec, &scs, cfg.runs()).into_iter();
    for (label, _) in &sweeps {
        let mut row = vec![label.clone()];
        for _ in MULTIPATH_PROTOCOLS {
            let summary = summaries.next().expect("one summary set per scenario");
            row.push(f2(summary[0].mean));
        }
        fig.row(row);
    }
    fig
}

/// Runs one sweep on topology 3c and reports the *single-path* peer's
/// goodput per multipath protocol.
fn sweep_3c(cfg: &ExpConfig, id: &str, title: &str, sweeps: Vec<(String, Sweep)>) -> Figure {
    let mut columns = vec!["point".to_string()];
    columns.extend(MULTIPATH_PROTOCOLS.iter().map(|s| s.to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut fig = Figure::new(id, title, &col_refs);
    let (duration, warmup) = durations(cfg);
    let mut scs = Vec::new();
    for (label, sweep) in &sweeps {
        for proto in MULTIPATH_PROTOCOLS {
            scs.push(
                Scenario::new(
                    splitmix64(cfg.seed ^ splitmix64(0xB0B ^ label.len() as u64)),
                    vec![link1(sweep), LinkParams::paper_default()],
                    vec![
                        ConnSpec::bulk(proto, vec![0, 1]),
                        ConnSpec::bulk(single_path_peer(proto), vec![1]),
                    ],
                )
                .with_duration(duration, warmup),
            );
        }
    }
    let mut summaries = run_seeds_batch(&cfg.exec, &scs, cfg.runs()).into_iter();
    for (label, _) in &sweeps {
        let mut row = vec![label.clone()];
        for _ in MULTIPATH_PROTOCOLS {
            let summary = summaries.next().expect("one summary set per scenario");
            row.push(f2(summary[1].mean));
        }
        fig.row(row);
    }
    fig.note("single-path peer: Vivace for MPCC, BBR for bbr, Reno otherwise (§7.2.1)");
    fig
}

fn buffer_sweeps(cfg: &ExpConfig) -> Vec<(String, Sweep)> {
    buffer_points(cfg)
        .into_iter()
        .map(|b| (format!("{}KB", b / 1000), Sweep::Buffer(b)))
        .collect()
}

fn loss_sweeps(cfg: &ExpConfig) -> Vec<(String, Sweep)> {
    loss_points(cfg)
        .into_iter()
        .map(|l| (format!("{}%", l * 100.0), Sweep::Loss(l)))
        .collect()
}

/// Fig. 5a.
pub fn run_fig5a(cfg: &ExpConfig) -> Vec<Figure> {
    vec![sweep_3b(
        cfg,
        "fig5a",
        "multipath goodput (Mbps) vs link-1 buffer, topology 3b",
        buffer_sweeps(cfg),
    )]
}

/// Fig. 5b.
pub fn run_fig5b(cfg: &ExpConfig) -> Vec<Figure> {
    vec![sweep_3c(
        cfg,
        "fig5b",
        "single-path goodput (Mbps) vs link-1 buffer, topology 3c",
        buffer_sweeps(cfg),
    )]
}

/// Fig. 6a.
pub fn run_fig6a(cfg: &ExpConfig) -> Vec<Figure> {
    vec![sweep_3b(
        cfg,
        "fig6a",
        "multipath goodput (Mbps) vs link-1 random loss, topology 3b",
        loss_sweeps(cfg),
    )]
}

/// Fig. 6b.
pub fn run_fig6b(cfg: &ExpConfig) -> Vec<Figure> {
    vec![sweep_3c(
        cfg,
        "fig6b",
        "single-path goodput (Mbps) vs link-1 random loss, topology 3c",
        loss_sweeps(cfg),
    )]
}
