//! Ablations of MPCC's design choices (beyond the paper's own figures):
//!
//! * **A1 — per-subflow vs connection-level control** (§4's "failed try"):
//!   on a topology with heterogeneous RTTs, the connection-level controller
//!   suffers Obstacles I–III (sequential probing, slowest-RTT monitor
//!   intervals, worst-subflow penalty) and converges slower / utilizes
//!   less.
//! * **A2 — probe amplitude ω** as a fraction of the connection total
//!   (the paper's choice) vs of the subflow's own rate: with asymmetric
//!   link bandwidths, own-rate scaling "gets stuck" (§5.2).
//! * **A3 — utility γ** (loss-only vs latency-aware) on deep buffers:
//!   the latency/throughput trade-off behind MPCC-loss vs MPCC-latency.

use crate::output::{f2, Figure};
use crate::runner::{ConnSpec, Scenario};
use crate::ExpConfig;
use mpcc_netsim::link::LinkParams;
use mpcc_simcore::rng::splitmix64;
use mpcc_simcore::{Rate, SimDuration, SimTime};

/// Runs all ablations.
pub fn run(cfg: &ExpConfig) -> Vec<Figure> {
    vec![a1(cfg), a2(cfg), a3(cfg)]
}

/// A1: per-subflow (MPCC) vs connection-level (§4) controller.
fn a1(cfg: &ExpConfig) -> Figure {
    let duration = cfg.scale(SimDuration::from_secs(60), SimDuration::from_secs(200));
    let warmup = cfg.scale(SimDuration::from_secs(15), SimDuration::from_secs(30));
    let mut fig = Figure::new(
        "ablation-a1",
        "per-subflow vs connection-level control, 10 ms + 100 ms links (§4 Obstacles I-III)",
        &["controller", "goodput_mbps", "time_to_100mbps_s"],
    );
    // Heterogeneous RTTs: link 0 fast (10 ms), link 1 slow (100 ms).
    let links = vec![
        LinkParams::paper_default().with_delay(SimDuration::from_millis(10)),
        LinkParams::paper_default().with_delay(SimDuration::from_millis(100)),
    ];
    let protos = ["mpcc-loss", "mpcc-conn-level"];
    let scs: Vec<Scenario> = protos
        .iter()
        .map(|proto| {
            Scenario::new(
                splitmix64(cfg.seed ^ 0xA1),
                links.clone(),
                vec![ConnSpec::bulk(proto, vec![0, 1])],
            )
            .with_duration(duration, warmup)
        })
        .collect();
    for (proto, result) in protos.iter().zip(cfg.exec.run_batch(scs)) {
        // Time to first reach half the 200 Mbps capacity.
        let t80 = result.conns[0]
            .series
            .points()
            .iter()
            .find(|p| p.mbps >= 100.0)
            .map(|p| p.t.as_secs_f64())
            .unwrap_or(f64::NAN);
        fig.row(vec![
            proto.to_string(),
            f2(result.conns[0].goodput_mbps),
            f2(t80),
        ]);
    }
    fig.note("Obstacle II forces the fast subflow onto 100 ms monitor intervals; Obstacle I costs 2d MIs per gradient estimate");
    fig
}

/// A2: ω from connection total vs from the subflow's own rate.
fn a2(cfg: &ExpConfig) -> Figure {
    use mpcc::{Mpcc, MpccConfig, StateConfig};
    use mpcc_netsim::topology::parallel_links;
    use mpcc_transport::{MpReceiver, MpSender, SchedulerKind, SenderConfig};

    let duration = cfg.scale(SimDuration::from_secs(60), SimDuration::from_secs(200));
    let warmup = cfg.scale(SimDuration::from_secs(15), SimDuration::from_secs(30));
    let mut fig = Figure::new(
        "ablation-a2",
        "probe amplitude scaling on asymmetric links (20 + 300 Mbps): §5.2's design choice",
        &["omega_scaling", "goodput_mbps", "slow_link_share_pct"],
    );
    let links = [
        LinkParams::paper_default().with_capacity(Rate::from_mbps(20.0)),
        LinkParams::paper_default().with_capacity(Rate::from_mbps(300.0)),
    ];
    // Both ω-scaling variants run independently: fan out via the pool.
    let variants = vec![("of_connection_total", false), ("of_own_rate", true)];
    let rows = cfg.exec.map(variants, |(label, own_rate)| {
        let mut net = parallel_links(splitmix64(cfg.seed ^ 0xA2), &links);
        let p0 = net.path(0);
        let p1 = net.path(1);
        let mut sim = net.sim;
        let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
        let mut mcfg = MpccConfig::loss().with_seed(13);
        mcfg.state = StateConfig {
            probe_scales_with_own_rate: own_rate,
            ..mcfg.state
        };
        let scfg = SenderConfig::bulk(recv, vec![p0, p1])
            .with_scheduler(SchedulerKind::paper_rate_based());
        let sender = sim.add_endpoint(Box::new(MpSender::new(scfg, Box::new(Mpcc::new(mcfg)))));
        let warm_end = SimTime::ZERO + warmup;
        sim.run_until(warm_end);
        let (a0, s0) = {
            let s = sim.endpoint::<MpSender>(sender);
            (s.data_acked(), s.subflow_stats(0, warm_end).delivered_bytes)
        };
        let end = SimTime::ZERO + duration;
        sim.run_until(end);
        let s = sim.endpoint::<MpSender>(sender);
        let span = duration.as_secs_f64() - warmup.as_secs_f64();
        let goodput = (s.data_acked() - a0) as f64 * 8.0 / span / 1e6;
        let slow_bytes = s.subflow_stats(0, end).delivered_bytes - s0;
        let share = slow_bytes as f64 * 8.0 / span / 1e6 / 20.0 * 100.0;
        vec![label.to_string(), f2(goodput), f2(share)]
    });
    for row in rows {
        fig.row(row);
    }
    fig.note("own-rate scaling's probes on the slow link are tiny relative to the fast link's dynamics — gradient estimates stall (§5.2)");
    fig
}

/// A3: γ = 0 vs γ = 1 on deep buffers (the MPCC-loss / MPCC-latency
/// trade-off of §7.2.4).
fn a3(cfg: &ExpConfig) -> Figure {
    let duration = cfg.scale(SimDuration::from_secs(60), SimDuration::from_secs(200));
    let warmup = cfg.scale(SimDuration::from_secs(15), SimDuration::from_secs(30));
    let mut fig = Figure::new(
        "ablation-a3",
        "utility γ: throughput vs self-induced latency on 1 MB buffers",
        &["variant", "goodput_mbps", "mean_srtt_ms"],
    );
    let params = LinkParams::paper_default().with_buffer(1_000_000);
    let protos = ["mpcc-loss", "mpcc-latency"];
    let scs: Vec<Scenario> = protos
        .iter()
        .map(|proto| {
            Scenario::new(
                splitmix64(cfg.seed ^ 0xA3),
                vec![params, params],
                vec![ConnSpec::bulk(proto, vec![0, 1])],
            )
            .with_duration(duration, warmup)
            .with_sampling(SimDuration::from_millis(100))
        })
        .collect();
    for (proto, result) in protos.iter().zip(cfg.exec.run_batch(scs)) {
        let mut sum = 0.0;
        let mut n = 0usize;
        for sf in &result.conns[0].srtt_ms {
            for &(t, ms) in sf {
                if t > SimTime::ZERO + warmup && ms > 0.0 {
                    sum += ms;
                    n += 1;
                }
            }
        }
        fig.row(vec![
            proto.to_string(),
            f2(result.conns[0].goodput_mbps),
            f2(if n > 0 { sum / n as f64 } else { 0.0 }),
        ]);
    }
    fig.note("γ=1 trades a little goodput for staying near the 60 ms propagation RTT (§7.2.4)");
    fig
}
