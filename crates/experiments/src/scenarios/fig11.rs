//! Fig. 11: convergence dynamics on topology 3c — MPCC-latency (11a) vs
//! Balia (11b) time series of both multipath subflows and the single-path
//! peer, plus the §7.2.5 rate-jitter comparison.

use crate::output::{f2, Figure};
use crate::protocols::single_path_peer;
use crate::runner::{ConnSpec, Scenario};
use crate::ExpConfig;
use mpcc_netsim::link::LinkParams;
use mpcc_simcore::rng::splitmix64;
use mpcc_simcore::{SimDuration, SimTime};

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Figure> {
    let duration = cfg.scale(SimDuration::from_secs(150), SimDuration::from_secs(300));
    let warmup = SimDuration::from_secs(30);
    let mut figs = Vec::new();
    let mut jitter = Figure::new(
        "fig11-jitter",
        "rate jitter after convergence (mean |Δrate| between 1 s samples, Mbps) — §7.2.5",
        &["protocol", "mp_subflow1", "mp_subflow2", "single_path"],
    );

    // Both protocol runs are independent: submit them as one batch.
    let cases = [("fig11a", "mpcc-latency"), ("fig11b", "balia")];
    let scs: Vec<Scenario> = cases
        .iter()
        .map(|(_, proto)| {
            Scenario::new(
                splitmix64(cfg.seed ^ splitmix64(0x11A)),
                vec![LinkParams::paper_default(), LinkParams::paper_default()],
                vec![
                    ConnSpec::bulk(proto, vec![0, 1]),
                    ConnSpec::bulk(single_path_peer(proto), vec![1]),
                ],
            )
            .with_duration(duration, warmup)
            .with_sampling(SimDuration::from_secs(1))
        })
        .collect();
    let results = cfg.exec.run_batch(scs);
    for ((id, proto), result) in cases.iter().zip(results) {
        let mut fig = Figure::new(
            id,
            &format!("{proto} convergence on topology 3c (subflow 2 shares link 2 with the single-path flow)"),
            &["t_sec", "MP-subflow1", "MP-subflow2", "SP"],
        );
        let mp = &result.conns[0];
        let sp = &result.conns[1];
        let n = mp.subflow_series[0]
            .points()
            .len()
            .min(mp.subflow_series[1].points().len())
            .min(sp.series.points().len());
        for i in 0..n {
            fig.row(vec![
                f2(mp.subflow_series[0].points()[i].t.as_secs_f64()),
                f2(mp.subflow_series[0].points()[i].mbps),
                f2(mp.subflow_series[1].points()[i].mbps),
                f2(sp.series.points()[i].mbps),
            ]);
        }
        let after = SimTime::ZERO + warmup;
        jitter.row(vec![
            proto.to_string(),
            f2(mp.subflow_series[0].jitter_after(after)),
            f2(mp.subflow_series[1].jitter_after(after)),
            f2(sp.series.jitter_after(after)),
        ]);
        figs.push(fig);
    }
    figs.push(jitter);
    figs
}
