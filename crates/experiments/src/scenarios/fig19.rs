//! Fig. 19: flow completion times on the data-center testbed (Fig. 18).
//!
//! The testbed is a 2-spine/4-ToR Clos with 25 Gbps links, 6 hosts, ECMP,
//! and per host: 15×10 GB + 35×10 MB flows at t=0 plus one 10 KB flow per
//! second for a minute, all as 3-subflow multipath connections. We scale
//! the fabric and the workload down by ~10× (2.5 Gbps links; 25 MB / 1 MB /
//! 10 KB flow classes, proportionally fewer flows) — FCT *orderings*
//! between protocols are preserved under proportional scaling because they
//! are driven by ramp-up and retransmission behaviour relative to the BDP
//! (see DESIGN.md §1).

use crate::output::{f3, Figure};
use crate::protocols;
use crate::runner::ShardTelemetry;
use crate::ExpConfig;
use mpcc_metrics::Summary;
use mpcc_netsim::topology::{Clos, ClosConfig};
use mpcc_netsim::{PathId, ShardedSimulation};
use mpcc_simcore::rng::splitmix64;
use mpcc_simcore::{SimDuration, SimRng, SimTime};
use mpcc_transport::{MpReceiver, MpSender, SenderConfig, Workload};

const PROTOCOLS: [&str; 7] = [
    "mpcc-latency",
    "mpcc-loss",
    "cubic",
    "lia",
    "olia",
    "balia",
    "wvegas",
];

struct FlowSpec {
    src: usize,
    dst: usize,
    bytes: u64,
    start: SimTime,
    class: usize, // 0 short, 1 medium, 2 long
}

/// Workload shape: per-host flow counts, per-class sizes, and the hard
/// time cap. Derived from the [`ExpConfig`] tiers by [`shape`];
/// [`run_protocols_scaled`] substitutes a miniature one for tests.
#[derive(Clone, Copy)]
struct Shape {
    /// Per-host (long, medium, short) flow counts.
    counts: (usize, usize, usize),
    /// Per-class (long, medium, short) flow sizes, bytes.
    sizes: (u64, u64, u64),
    /// Hard cap on simulated time, seconds.
    cap_secs: u64,
}

/// The scenario's workload shape: `--full-scale` restores the paper's
/// 10 KB / 10 MB classes with a 1 GB bulk class (the paper's 10 GB cut
/// 10× to bound runtime; noted on the figure), otherwise the
/// ~20×-scaled-down defaults.
fn shape(cfg: &ExpConfig) -> Shape {
    let counts = if cfg.full_scale {
        // Full link rate with per-host counts at the reduced tier: the
        // bulk class alone is ~8 GB of payload per protocol.
        (1, 3, 6)
    } else {
        cfg.scale((2, 5, 8), (4, 10, 20))
    };
    let sizes = if cfg.full_scale {
        (1_000_000_000, 10_000_000, 10_000)
    } else {
        (cfg.scale(50_000_000, 200_000_000), 1_000_000, 10_000)
    };
    Shape {
        counts,
        sizes,
        cap_secs: cfg.scale(120, 300),
    }
}

/// Figure labels for the three classes, shortest first.
fn class_names(cfg: &ExpConfig) -> [&'static str; 3] {
    if cfg.full_scale {
        ["10KB", "10MB", "1GB"]
    } else {
        ["10KB", "1MB", "50MB"]
    }
}

/// The Clos fabric: full-size 25 Gbps links under `--full-scale`, the
/// 20×-scaled 1.25 Gbps fabric otherwise (identical to the pre-sharding
/// configuration, so committed goldens are unaffected).
fn fabric(cfg: &ExpConfig) -> ClosConfig {
    ClosConfig {
        link_capacity: mpcc_simcore::Rate::from_gbps(if cfg.full_scale { 25.0 } else { 1.25 }),
        buffer: 2_000_000,
        ..ClosConfig::default()
    }
}

/// The workload (shared across protocols via the seed).
fn workload(shape: &Shape, hosts: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = SimRng::seed_from_u64(seed);
    let (n_long, n_med, n_short) = shape.counts;
    let (long_b, med_b, short_b) = shape.sizes;
    let mut flows = Vec::new();
    let pick_dst = |src: usize, rng: &mut SimRng| loop {
        let d = rng.index(hosts);
        if d != src {
            return d;
        }
    };
    for src in 0..hosts {
        // Bulk flows start within the first second (desynchronized, as
        // real applications would) rather than at the same instant.
        for _ in 0..n_long {
            let dst = pick_dst(src, &mut rng);
            let start = SimTime::from_millis(rng.range_u64(0, 1000));
            flows.push(FlowSpec {
                src,
                dst,
                bytes: long_b,
                start,
                class: 2,
            });
        }
        for _ in 0..n_med {
            let dst = pick_dst(src, &mut rng);
            let start = SimTime::from_millis(rng.range_u64(0, 1000));
            flows.push(FlowSpec {
                src,
                dst,
                bytes: med_b,
                start,
                class: 1,
            });
        }
        for i in 0..n_short {
            let dst = pick_dst(src, &mut rng);
            flows.push(FlowSpec {
                src,
                dst,
                bytes: short_b,
                start: SimTime::from_secs(i as u64 + 1),
                class: 0,
            });
        }
    }
    flows
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Figure> {
    let class_names = class_names(cfg);
    let mut figs = Vec::new();
    let mut per_class: Vec<Figure> = class_names
        .iter()
        .map(|c| {
            let scale = if cfg.full_scale {
                "full-size"
            } else {
                "scaled"
            };
            Figure::new(
                &format!("fig19-{c}"),
                &format!("FCT (ms) of {c} flows on the {scale} Clos testbed"),
                &["protocol", "mean", "p1", "p5", "median", "p95", "p99"],
            )
        })
        .collect();

    // Each protocol's Clos run is an independent simulation: farm them out
    // across the worker pool and consume results in PROTOCOLS order.
    let outcomes = run_protocols(cfg, &PROTOCOLS, shape(cfg));
    for (proto, (fcts, incomplete)) in PROTOCOLS.iter().zip(outcomes) {
        for (class, fig) in per_class.iter_mut().enumerate() {
            let s = Summary::of(&fcts[class]);
            fig.row(vec![
                proto.to_string(),
                f3(s.mean),
                f3(s.percentile(1.0)),
                f3(s.percentile(5.0)),
                f3(s.median()),
                f3(s.percentile(95.0)),
                f3(s.percentile(99.0)),
            ]);
        }
        if incomplete > 0 {
            let cap_secs = shape(cfg).cap_secs;
            per_class[2].note(format!(
                "{proto}: {incomplete} flows had not completed at the {cap_secs}-second cap"
            ));
        }
    }
    for mut fig in per_class {
        if cfg.full_scale {
            fig.note("full-size fabric: 25 Gbps links, 8 hosts, flow classes 10KB/10MB/1GB (paper's 10 GB bulk cut 10× for runtime), 3 subflows via ECMP, sharded engine");
        } else {
            fig.note("fabric scaled 20×: 1.25 Gbps links, 8 hosts, flow classes 10KB/1MB/50MB, 3 subflows via ECMP");
        }
        if cfg.shards > 1 {
            fig.note("simulated on the partitioned engine (--shards N); results are invariant across shard counts >= 2");
        }
        figs.push(fig);
    }
    figs
}

/// Farms `protos` out across the worker pool and returns their outcomes
/// in input order. Telemetry (when `--trace`/`--metrics` is configured on
/// the executor) is claimed per protocol *before* the fan-out — so run
/// ids are worker-count-independent — and the per-shard part files are
/// merged afterwards in the same deterministic order.
fn run_protocols(cfg: &ExpConfig, protos: &[&str], shape: Shape) -> Vec<(Vec<Vec<f64>>, usize)> {
    let jobs: Vec<(&str, Option<ShardTelemetry>)> = protos
        .iter()
        .map(|p| (*p, cfg.exec.shard_telemetry(&format!("fig19-{p}"))))
        .collect();
    let results = cfg
        .exec
        .map(jobs, |(proto, telem)| run_proto(cfg, proto, shape, telem));
    results
        .into_iter()
        .map(|(fcts, incomplete, telem)| {
            if let Some(t) = telem {
                t.merge().expect("cannot merge fig19 telemetry part files");
            }
            (fcts, incomplete)
        })
        .collect()
}

/// Test/harness entry: runs `protos` through the executor pool exactly as
/// [`run`] does (per-protocol telemetry claimed and merged in order), but
/// with a miniature workload — one long / one medium / two short flows
/// per host with 20×-smaller classes, capped at `cap_secs` — so shard
/// determinism can be exercised in seconds.
pub fn run_protocols_scaled(
    cfg: &ExpConfig,
    protos: &[&str],
    cap_secs: u64,
) -> Vec<(Vec<Vec<f64>>, usize)> {
    let shape = Shape {
        counts: (1, 1, 2),
        sizes: (2_500_000, 250_000, 10_000),
        cap_secs,
    };
    run_protocols(cfg, protos, shape)
}

/// Runs one protocol's complete Clos workload; returns the per-class FCT
/// samples (ms), the number of flows still incomplete at the cap, and the
/// telemetry handle (ready to merge once back on the submitting thread).
///
/// The default path (`--shards 1`, no `--full-scale`) is the original
/// single-instance engine, byte-identical to the committed goldens;
/// `--shards N` and `--full-scale` run the same workload on the
/// partitioned engine.
fn run_proto(
    cfg: &ExpConfig,
    proto: &str,
    shape: Shape,
    mut telem: Option<ShardTelemetry>,
) -> (Vec<Vec<f64>>, usize, Option<ShardTelemetry>) {
    if cfg.shards > 1 || cfg.full_scale {
        return run_proto_sharded(cfg, proto, shape, telem);
    }
    let seed = splitmix64(cfg.seed ^ 0x1919);
    let mut clos = Clos::new(seed, fabric(cfg));
    let hosts = clos.hosts();
    let flows = workload(&shape, hosts, splitmix64(seed ^ 1));
    let mut senders = Vec::new();
    // Paths must be registered before endpoints run; collect first.
    let flow_paths: Vec<_> = flows
        .iter()
        .map(|f| clos.subflow_paths(f.src, f.dst, 3))
        .collect();
    let mut sim = clos.sim;
    if let Some(t) = telem.as_mut() {
        t.install_single(&mut sim)
            .expect("cannot create fig19 telemetry part file");
    }
    for (i, flow) in flows.iter().enumerate() {
        let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
        let cc = protocols::make(proto, splitmix64(seed ^ (0x5EED + i as u64)));
        let cfg_s = SenderConfig {
            dst: recv,
            paths: flow_paths[i].clone(),
            workload: Workload::Finite(flow.bytes),
            scheduler: protocols::scheduler_for(proto),
            start_at: flow.start,
            peer_buffer: 300_000_000,
        };
        senders.push(sim.add_endpoint(Box::new(MpSender::new(cfg_s, cc))));
    }
    // Run until all flows complete (or a hard cap).
    let cap = SimTime::from_secs(shape.cap_secs);
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs(1);
        sim.run_until(t);
        let done = senders
            .iter()
            .all(|&s| sim.endpoint::<MpSender>(s).is_complete());
        if done || t >= cap {
            break;
        }
    }
    sim.tracer().flush();
    // Collect per-class FCTs.
    let mut fcts: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut incomplete = 0;
    for (i, flow) in flows.iter().enumerate() {
        match sim.endpoint::<MpSender>(senders[i]).fct() {
            Some(d) => fcts[flow.class].push(d.as_secs_f64() * 1000.0),
            None => incomplete += 1,
        }
    }
    (fcts, incomplete, telem)
}

/// The sharded variant: the same workload partitioned by rack over
/// `cfg.shards` engine instances (DESIGN.md §16). Every shard registers
/// the identical links/paths/endpoint slots (so ids line up) and installs
/// only the endpoints of the hosts it owns.
fn run_proto_sharded(
    cfg: &ExpConfig,
    proto: &str,
    shape: Shape,
    mut telem: Option<ShardTelemetry>,
) -> (Vec<Vec<f64>>, usize, Option<ShardTelemetry>) {
    let k = cfg.shards.max(1);
    let seed = splitmix64(cfg.seed ^ 0x1919);
    let fab = fabric(cfg);
    // Layout pass: flow list, ownership tables, endpoint id assignment.
    let mut scratch = Clos::new(seed, fab);
    let hosts = scratch.hosts();
    let flows = workload(&shape, hosts, splitmix64(seed ^ 1));
    for f in &flows {
        scratch.subflow_paths(f.src, f.dst, 3);
    }
    let shard_of_link = scratch.shard_of_links(k);
    let mut shard_of_ep = Vec::with_capacity(2 * flows.len());
    let mut owners = Vec::with_capacity(flows.len());
    let mut sender_ids = Vec::with_capacity(flows.len());
    for f in &flows {
        // Receiver slot first, mirroring the legacy registration order.
        let _recv = scratch.sim.reserve_endpoint();
        let sender = scratch.sim.reserve_endpoint();
        let (so, ro) = (
            scratch.shard_of_host(f.src, k),
            scratch.shard_of_host(f.dst, k),
        );
        shard_of_ep.push(ro);
        shard_of_ep.push(so);
        owners.push((so as usize, ro));
        sender_ids.push(sender);
    }
    let mut sim = ShardedSimulation::new(k, shard_of_link, shard_of_ep, |me| {
        let mut clos = Clos::new(seed, fab);
        let flow_paths: Vec<Vec<PathId>> = flows
            .iter()
            .map(|f| clos.subflow_paths(f.src, f.dst, 3))
            .collect();
        let mut sim = clos.sim;
        for (i, flow) in flows.iter().enumerate() {
            let recv = sim.reserve_endpoint();
            let sender = sim.reserve_endpoint();
            if owners[i].1 == me {
                sim.install_endpoint(recv, Box::new(MpReceiver::paper_default()));
            }
            if owners[i].0 == me as usize {
                let cc = protocols::make(proto, splitmix64(seed ^ (0x5EED + i as u64)));
                let cfg_s = SenderConfig {
                    dst: recv,
                    paths: flow_paths[i].clone(),
                    workload: Workload::Finite(flow.bytes),
                    scheduler: protocols::scheduler_for(proto),
                    start_at: flow.start,
                    peer_buffer: 300_000_000,
                };
                sim.install_endpoint(sender, Box::new(MpSender::new(cfg_s, cc)));
            }
        }
        sim
    });
    if let Some(t) = telem.as_mut() {
        t.install(&mut sim)
            .expect("cannot create fig19 telemetry part files");
    }
    let cap = SimTime::from_secs(shape.cap_secs);
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs(1);
        sim.run_until(t);
        let done = (0..flows.len()).all(|i| {
            sim.shard(owners[i].0)
                .endpoint::<MpSender>(sender_ids[i])
                .is_complete()
        });
        if done || t >= cap {
            break;
        }
    }
    sim.flush_tracers();
    let mut fcts: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut incomplete = 0;
    for (i, flow) in flows.iter().enumerate() {
        match sim
            .shard(owners[i].0)
            .endpoint::<MpSender>(sender_ids[i])
            .fct()
        {
            Some(d) => fcts[flow.class].push(d.as_secs_f64() * 1000.0),
            None => incomplete += 1,
        }
    }
    (fcts, incomplete, telem)
}
