//! Fig. 19: flow completion times on the data-center testbed (Fig. 18).
//!
//! The testbed is a 2-spine/4-ToR Clos with 25 Gbps links, 6 hosts, ECMP,
//! and per host: 15×10 GB + 35×10 MB flows at t=0 plus one 10 KB flow per
//! second for a minute, all as 3-subflow multipath connections. We scale
//! the fabric and the workload down by ~10× (2.5 Gbps links; 25 MB / 1 MB /
//! 10 KB flow classes, proportionally fewer flows) — FCT *orderings*
//! between protocols are preserved under proportional scaling because they
//! are driven by ramp-up and retransmission behaviour relative to the BDP
//! (see DESIGN.md §1).

use crate::output::{f3, Figure};
use crate::protocols;
use crate::ExpConfig;
use mpcc_metrics::Summary;
use mpcc_netsim::topology::{Clos, ClosConfig};
use mpcc_simcore::rng::splitmix64;
use mpcc_simcore::{SimDuration, SimRng, SimTime};
use mpcc_transport::{MpReceiver, MpSender, SenderConfig, Workload};

const PROTOCOLS: [&str; 7] = [
    "mpcc-latency",
    "mpcc-loss",
    "cubic",
    "lia",
    "olia",
    "balia",
    "wvegas",
];

struct FlowSpec {
    src: usize,
    dst: usize,
    bytes: u64,
    start: SimTime,
    class: usize, // 0 short, 1 medium, 2 long
}

/// The scaled workload (shared across protocols via the seed).
fn workload(cfg: &ExpConfig, hosts: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = SimRng::seed_from_u64(seed);
    let (n_long, n_med, n_short) = cfg.scale((2, 5, 8), (4, 10, 20));
    let (long_b, med_b, short_b) = (
        cfg.scale(50_000_000u64, 200_000_000),
        1_000_000u64,
        10_000u64,
    );
    let mut flows = Vec::new();
    let pick_dst = |src: usize, rng: &mut SimRng| loop {
        let d = rng.index(hosts);
        if d != src {
            return d;
        }
    };
    for src in 0..hosts {
        // Bulk flows start within the first second (desynchronized, as
        // real applications would) rather than at the same instant.
        for _ in 0..n_long {
            let dst = pick_dst(src, &mut rng);
            let start = SimTime::from_millis(rng.range_u64(0, 1000));
            flows.push(FlowSpec {
                src,
                dst,
                bytes: long_b,
                start,
                class: 2,
            });
        }
        for _ in 0..n_med {
            let dst = pick_dst(src, &mut rng);
            let start = SimTime::from_millis(rng.range_u64(0, 1000));
            flows.push(FlowSpec {
                src,
                dst,
                bytes: med_b,
                start,
                class: 1,
            });
        }
        for i in 0..n_short {
            let dst = pick_dst(src, &mut rng);
            flows.push(FlowSpec {
                src,
                dst,
                bytes: short_b,
                start: SimTime::from_secs(i as u64 + 1),
                class: 0,
            });
        }
    }
    flows
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Figure> {
    let class_names = ["10KB", "1MB", "50MB"];
    let mut figs = Vec::new();
    let mut per_class: Vec<Figure> = class_names
        .iter()
        .map(|c| {
            Figure::new(
                &format!("fig19-{c}"),
                &format!("FCT (ms) of {c} flows on the scaled Clos testbed"),
                &["protocol", "mean", "p1", "p5", "median", "p95", "p99"],
            )
        })
        .collect();

    // Each protocol's Clos run is an independent simulation: farm them out
    // across the worker pool and consume results in PROTOCOLS order.
    let outcomes = cfg
        .exec
        .map(PROTOCOLS.to_vec(), |proto| run_proto(cfg, proto));
    for (proto, (fcts, incomplete)) in PROTOCOLS.iter().zip(outcomes) {
        for (class, fig) in per_class.iter_mut().enumerate() {
            let s = Summary::of(&fcts[class]);
            fig.row(vec![
                proto.to_string(),
                f3(s.mean),
                f3(s.percentile(1.0)),
                f3(s.percentile(5.0)),
                f3(s.median()),
                f3(s.percentile(95.0)),
                f3(s.percentile(99.0)),
            ]);
        }
        if incomplete > 0 {
            let cap_secs = cfg.scale(120, 300);
            per_class[2].note(format!(
                "{proto}: {incomplete} flows had not completed at the {cap_secs}-second cap"
            ));
        }
    }
    for mut fig in per_class {
        fig.note("fabric scaled 20×: 1.25 Gbps links, 8 hosts, flow classes 10KB/1MB/50MB, 3 subflows via ECMP");
        figs.push(fig);
    }
    figs
}

/// Runs one protocol's complete Clos workload; returns the per-class FCT
/// samples (ms) and the number of flows still incomplete at the cap.
fn run_proto(cfg: &ExpConfig, proto: &str) -> (Vec<Vec<f64>>, usize) {
    let seed = splitmix64(cfg.seed ^ 0x1919);
    let mut clos = Clos::new(
        seed,
        ClosConfig {
            link_capacity: mpcc_simcore::Rate::from_gbps(1.25),
            buffer: 2_000_000,
            ..ClosConfig::default()
        },
    );
    let hosts = clos.hosts();
    let flows = workload(cfg, hosts, splitmix64(seed ^ 1));
    let mut senders = Vec::new();
    // Paths must be registered before endpoints run; collect first.
    let flow_paths: Vec<_> = flows
        .iter()
        .map(|f| clos.subflow_paths(f.src, f.dst, 3))
        .collect();
    let mut sim = clos.sim;
    for (i, flow) in flows.iter().enumerate() {
        let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
        let cc = protocols::make(proto, splitmix64(seed ^ (0x5EED + i as u64)));
        let cfg_s = SenderConfig {
            dst: recv,
            paths: flow_paths[i].clone(),
            workload: Workload::Finite(flow.bytes),
            scheduler: protocols::scheduler_for(proto),
            start_at: flow.start,
            peer_buffer: 300_000_000,
        };
        senders.push(sim.add_endpoint(Box::new(MpSender::new(cfg_s, cc))));
    }
    // Run until all flows complete (or a hard cap).
    let cap = SimTime::from_secs(cfg.scale(120, 300));
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs(1);
        sim.run_until(t);
        let done = senders
            .iter()
            .all(|&s| sim.endpoint::<MpSender>(s).is_complete());
        if done || t >= cap {
            break;
        }
    }
    // Collect per-class FCTs.
    let mut fcts: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut incomplete = 0;
    for (i, flow) in flows.iter().enumerate() {
        match sim.endpoint::<MpSender>(senders[i]).fct() {
            Some(d) => fcts[flow.class].push(d.as_secs_f64() * 1000.0),
            None => incomplete += 1,
        }
    }
    (fcts, incomplete)
}
