//! Wall-clock measurement mode (`experiments --bench`).
//!
//! Runs the canonical `mpcc-bench` bulk workload — one MPCC connection
//! over two paper-default links — under a wall clock and emits
//! `BENCH_simulator.json`: simulated-seconds per wall-second, events per
//! second, peak event-queue depth. The committed copy at the repo root is
//! the performance baseline; `--bench-check FILE` compares a fresh run
//! against it and fails on a >20 % events/sec regression, which is the
//! CI bench-smoke gate.
//!
//! The workload itself is deterministic (fixed seed), so `events`,
//! `peak_event_queue_len`, and `delivered_bytes` are exact across
//! machines; only the wall-clock rates vary.

use crate::protocols;
use mpcc_bench::{run_bulk_sim, BulkRun};
use std::path::Path;
use std::time::Instant;

/// The workload label written into the JSON (and asserted by the check).
pub const WORKLOAD: &str = "bulk-2link-paper-default";
/// Protocol label driving the bench connection.
pub const PROTOCOL: &str = "mpcc-loss";
/// Parallel paper-default links in the bench topology.
pub const N_LINKS: usize = 2;
/// Seed for the bench run (fixed: the event count must be reproducible).
pub const SEED: u64 = 7;
/// Relative events/sec loss that fails `--bench-check`.
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// Knobs of one `--bench` invocation.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Simulated seconds per repetition.
    pub sim_secs: u64,
    /// Repetitions; the median wall time is reported.
    pub reps: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sim_secs: 10,
            reps: 5,
        }
    }
}

/// One measured bench result.
#[derive(Clone, Copy, Debug)]
pub struct BenchReport {
    /// Configuration the measurement ran under.
    pub cfg: BenchConfig,
    /// Deterministic per-run outcome (events, delivered bytes, peak queue).
    pub run: BulkRun,
    /// Median wall-clock seconds of one repetition.
    pub wall_secs: f64,
}

impl BenchReport {
    /// Simulated seconds advanced per wall-clock second.
    pub fn sim_secs_per_wall_sec(&self) -> f64 {
        self.cfg.sim_secs as f64 / self.wall_secs
    }

    /// Simulation events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.run.events as f64 / self.wall_secs
    }

    /// Renders the `BENCH_simulator.json` document. `baseline` carries the
    /// pre-change BinaryHeap measurement forward so the speedup stays on
    /// record next to the current number.
    pub fn to_json(&self, queue: &str, baseline: Option<(&str, f64)>) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"workload\": \"{WORKLOAD}\",\n"));
        out.push_str(&format!("  \"protocol\": \"{PROTOCOL}\",\n"));
        out.push_str(&format!("  \"n_links\": {N_LINKS},\n"));
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        out.push_str(&format!("  \"sim_secs\": {},\n", self.cfg.sim_secs));
        out.push_str(&format!("  \"reps\": {},\n", self.cfg.reps));
        out.push_str(&format!("  \"queue\": \"{queue}\",\n"));
        out.push_str(&format!("  \"wall_secs_median\": {:.4},\n", self.wall_secs));
        out.push_str(&format!(
            "  \"sim_secs_per_wall_sec\": {:.2},\n",
            self.sim_secs_per_wall_sec()
        ));
        out.push_str(&format!("  \"events\": {},\n", self.run.events));
        out.push_str(&format!(
            "  \"events_per_sec\": {:.0},\n",
            self.events_per_sec()
        ));
        out.push_str(&format!(
            "  \"peak_event_queue_len\": {},\n",
            self.run.peak_queue_len
        ));
        out.push_str(&format!(
            "  \"delivered_bytes\": {},\n",
            self.run.delivered_bytes
        ));
        // The timer wheel's introspection counters are always on (and
        // deterministic); wall-clock attribution only exists in
        // `--features profiler` builds.
        let prof = &self.run.profile;
        out.push_str(&format!(
            "  \"wheel\": {{ \"cascades\": {}, \"overflow_promotions\": {} }}",
            prof.cascades, prof.overflow_promotions
        ));
        if prof.enabled {
            out.push_str(",\n  \"profile\": {\n");
            let cats = mpcc_simcore::ProfCat::all();
            for (i, cat) in cats.iter().enumerate() {
                out.push_str(&format!(
                    "    \"{}\": {{ \"events\": {}, \"wall_ns\": {} }}{}\n",
                    cat.name(),
                    prof.counts[*cat as usize],
                    prof.nanos[*cat as usize],
                    if i + 1 < cats.len() { "," } else { "" },
                ));
            }
            out.push_str("  }");
        }
        if let Some((name, eps)) = baseline {
            out.push_str(&format!(
                ",\n  \"baseline\": {{ \"queue\": \"{name}\", \"events_per_sec\": {eps:.0} }}"
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Runs the bench workload `cfg.reps` times and reports the median wall
/// time. Asserts every repetition produced the identical deterministic
/// outcome — a cheap end-to-end determinism check in passing.
pub fn measure(cfg: BenchConfig) -> BenchReport {
    assert!(cfg.reps >= 1, "--bench-reps must be >= 1");
    let mut walls = Vec::with_capacity(cfg.reps);
    let mut first: Option<BulkRun> = None;
    for _ in 0..cfg.reps {
        let cc = protocols::make(PROTOCOL, SEED);
        let sched = protocols::scheduler_for(PROTOCOL);
        let start = Instant::now();
        let run = run_bulk_sim(cc, sched, N_LINKS, cfg.sim_secs, SEED);
        walls.push(start.elapsed().as_secs_f64());
        match first {
            None => first = Some(run),
            Some(f) => assert_eq!(
                (f.events, f.delivered_bytes, f.peak_queue_len),
                (run.events, run.delivered_bytes, run.peak_queue_len),
                "bench workload is not deterministic across repetitions"
            ),
        }
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    BenchReport {
        cfg,
        run: first.expect("reps >= 1"),
        wall_secs: walls[walls.len() / 2],
    }
}

/// Extracts a numeric field from the flat committed JSON (hand-rolled, as
/// everywhere else in the repo: no serde in the dependency tree).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh measurement against the committed baseline file.
/// Returns an error line if events/sec regressed beyond the tolerance.
pub fn check(report: &BenchReport, baseline_path: &Path) -> Result<String, String> {
    let doc = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let committed = json_number(&doc, "events_per_sec")
        .ok_or_else(|| format!("no events_per_sec in {}", baseline_path.display()))?;
    let fresh = report.events_per_sec();
    let floor = committed * (1.0 - REGRESSION_TOLERANCE);
    let verdict = format!(
        "bench-check: fresh {fresh:.0} events/sec vs committed {committed:.0} (floor {floor:.0})"
    );
    if fresh < floor {
        Err(format!("{verdict} — REGRESSION"))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_parses_committed_fields() {
        let doc = "{\n  \"events_per_sec\": 123456,\n  \"wall_secs_median\": 1.5\n}\n";
        assert_eq!(json_number(doc, "events_per_sec"), Some(123456.0));
        assert_eq!(json_number(doc, "wall_secs_median"), Some(1.5));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn bench_measures_and_checks() {
        let report = measure(BenchConfig {
            sim_secs: 1,
            reps: 2,
        });
        assert!(report.run.events > 10_000, "{report:?}");
        assert!(report.wall_secs > 0.0);
        let json = report.to_json("timer-wheel", Some(("binary-heap", 1.0)));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"baseline\""));

        let dir = std::env::temp_dir().join(format!("mpcc-bench-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, &json).unwrap();
        // Fresh == committed: passes the 20 % gate.
        assert!(check(&report, &path).is_ok());
        // An absurdly fast committed baseline: fails the gate.
        let fast = json.replace(
            &format!("\"events_per_sec\": {:.0}", report.events_per_sec()),
            "\"events_per_sec\": 99999999999",
        );
        std::fs::write(&path, fast).unwrap();
        assert!(check(&report, &path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
