//! Wall-clock measurement mode (`experiments --bench`).
//!
//! Runs the canonical `mpcc-bench` bulk workload — one MPCC connection
//! over two paper-default links — under a wall clock and emits
//! `BENCH_simulator.json`: simulated-seconds per wall-second, events per
//! second, peak event-queue depth. The committed copy at the repo root is
//! the performance baseline; `--bench-check FILE` compares a fresh run
//! against it and fails on a >20 % events/sec regression, which is the
//! CI bench-smoke gate.
//!
//! The workload itself is deterministic (fixed seed), so `events`,
//! `peak_event_queue_len`, and `delivered_bytes` are exact across
//! machines; only the wall-clock rates vary.

use crate::protocols;
use crate::scenarios::churn::{self, ChurnConfig};
use mpcc_bench::{run_bulk_sim, BulkRun};
use mpcc_simcore::ProfCat;
use std::path::Path;
use std::time::Instant;

/// The workload label written into the JSON (and asserted by the check).
pub const WORKLOAD: &str = "bulk-2link-paper-default";
/// Protocol label driving the bench connection.
pub const PROTOCOL: &str = "mpcc-loss";
/// Parallel paper-default links in the bench topology.
pub const N_LINKS: usize = 2;
/// Seed for the bench run (fixed: the event count must be reproducible).
pub const SEED: u64 = 7;
/// Relative events/sec loss that fails `--bench-check`.
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// Knobs of one `--bench` invocation.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Simulated seconds per repetition.
    pub sim_secs: u64,
    /// Repetitions; the median wall time is reported.
    pub reps: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sim_secs: 10,
            reps: 5,
        }
    }
}

/// One measured bench result.
#[derive(Clone, Copy, Debug)]
pub struct BenchReport {
    /// Configuration the measurement ran under.
    pub cfg: BenchConfig,
    /// Deterministic per-run outcome (events, delivered bytes, peak queue).
    pub run: BulkRun,
    /// Median wall-clock seconds of one repetition.
    pub wall_secs: f64,
}

impl BenchReport {
    /// Simulated seconds advanced per wall-clock second.
    pub fn sim_secs_per_wall_sec(&self) -> f64 {
        self.cfg.sim_secs as f64 / self.wall_secs
    }

    /// Simulation events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.run.events as f64 / self.wall_secs
    }

    /// Renders the `BENCH_simulator.json` document. `baseline` carries the
    /// pre-change BinaryHeap measurement forward so the speedup stays on
    /// record next to the current number.
    pub fn to_json(
        &self,
        queue: &str,
        baseline: Option<(&str, f64)>,
        sharded: &[ShardBench],
    ) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"workload\": \"{WORKLOAD}\",\n"));
        out.push_str(&format!("  \"protocol\": \"{PROTOCOL}\",\n"));
        out.push_str(&format!("  \"n_links\": {N_LINKS},\n"));
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        out.push_str(&format!("  \"sim_secs\": {},\n", self.cfg.sim_secs));
        out.push_str(&format!("  \"reps\": {},\n", self.cfg.reps));
        out.push_str(&format!("  \"queue\": \"{queue}\",\n"));
        out.push_str(&format!("  \"wall_secs_median\": {:.4},\n", self.wall_secs));
        out.push_str(&format!(
            "  \"sim_secs_per_wall_sec\": {:.2},\n",
            self.sim_secs_per_wall_sec()
        ));
        out.push_str(&format!("  \"events\": {},\n", self.run.events));
        out.push_str(&format!(
            "  \"events_per_sec\": {:.0},\n",
            self.events_per_sec()
        ));
        out.push_str(&format!(
            "  \"peak_event_queue_len\": {},\n",
            self.run.peak_queue_len
        ));
        out.push_str(&format!(
            "  \"delivered_bytes\": {},\n",
            self.run.delivered_bytes
        ));
        // The timer wheel's introspection counters are always on (and
        // deterministic); wall-clock attribution only exists in
        // `--features profiler` builds.
        let prof = &self.run.profile;
        out.push_str(&format!(
            "  \"wheel\": {{ \"cascades\": {}, \"overflow_promotions\": {} }}",
            prof.cascades, prof.overflow_promotions
        ));
        if prof.enabled {
            out.push_str(",\n  \"profile\": {\n");
            let cats = mpcc_simcore::ProfCat::all();
            for (i, cat) in cats.iter().enumerate() {
                out.push_str(&format!(
                    "    \"{}\": {{ \"events\": {}, \"wall_ns\": {} }}{}\n",
                    cat.name(),
                    prof.counts[*cat as usize],
                    prof.nanos[*cat as usize],
                    if i + 1 < cats.len() { "," } else { "" },
                ));
            }
            out.push_str("  }");
        }
        if let Some((name, eps)) = baseline {
            out.push_str(&format!(
                ",\n  \"baseline\": {{ \"queue\": \"{name}\", \"events_per_sec\": {eps:.0} }}"
            ));
        }
        // Sharded-engine entries last: the CI 20 % gate reads the FIRST
        // "events_per_sec" occurrence, which stays the single-instance
        // number above.
        if !sharded.is_empty() {
            out.push_str(&format!(
                ",\n  \"sharded_workload\": \"{}\",\n  \"sharded\": [\n",
                SHARD_WORKLOAD
            ));
            for (i, s) in sharded.iter().enumerate() {
                out.push_str(&format!(
                    "    {{ \"shards\": {}, \"cores\": {}, \"threaded\": {}, \
                     \"wall_secs_median\": {:.4}, \"total_events\": {}, \
                     \"events_per_sec\": {:.0}, \"flows\": {}, \"flows_per_core\": {:.1}, \
                     \"peak_event_queue_len_per_shard\": {}, \"handoffs\": {}, \
                     \"epochs\": {}, \"shard_sync\": {{ \"events\": {}, \"wall_ns\": {} }} }}{}\n",
                    s.shards,
                    s.cores,
                    s.threaded,
                    s.wall_secs,
                    s.total_events,
                    s.events_per_sec(),
                    s.flows,
                    s.flows as f64 / s.shards as f64,
                    s.peak_queue_per_shard,
                    s.handoffs,
                    s.epochs,
                    s.shard_sync_events,
                    s.shard_sync_ns,
                    if i + 1 < sharded.len() { "," } else { "" },
                ));
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Label of the sharded-engine bench workload.
pub const SHARD_WORKLOAD: &str = "churn-clos-1500conns-10s";
/// Shard counts the sharded bench sweeps.
pub const SHARD_COUNTS: [u8; 3] = [1, 2, 4];

/// One sharded-engine measurement at a fixed shard count.
#[derive(Clone, Copy, Debug)]
pub struct ShardBench {
    /// Shard count of this run.
    pub shards: u8,
    /// CPU cores available when measured (aggregate throughput can only
    /// exceed single-shard throughput when `cores >= shards`).
    pub cores: usize,
    /// Whether the threaded backend ran (false = sequential lockstep).
    pub threaded: bool,
    /// Median wall-clock seconds of one repetition.
    pub wall_secs: f64,
    /// Aggregate simulation work over all shards (shard-count invariant).
    pub total_events: u64,
    /// Scripted connections in the workload.
    pub flows: usize,
    /// Largest per-shard event-queue high-water mark (satellite of the
    /// per-core memory bound — the per-shard max, not the sum).
    pub peak_queue_per_shard: usize,
    /// Cross-shard packet handoffs.
    pub handoffs: u64,
    /// Synchronization epochs.
    pub epochs: u64,
    /// `shard_sync` profiler events (0 without `--features profiler`).
    pub shard_sync_events: u64,
    /// `shard_sync` profiler wall nanoseconds (0 without the feature).
    pub shard_sync_ns: u64,
}

impl ShardBench {
    /// Aggregate events per wall-clock second over all shards.
    pub fn events_per_sec(&self) -> f64 {
        self.total_events as f64 / self.wall_secs
    }
}

/// Measures the churn workload on the sharded engine at each shard count
/// in [`SHARD_COUNTS`]. Asserts the outcome digest is identical across
/// shard counts — the bench doubles as an end-to-end determinism check.
pub fn measure_sharded(reps: usize) -> Vec<ShardBench> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = Vec::new();
    let mut digest: Option<u64> = None;
    for &k in &SHARD_COUNTS {
        let cfg = ChurnConfig::small(SEED, k, 1_500, 8);
        let mut walls = Vec::with_capacity(reps);
        let mut kept = None;
        for _ in 0..reps.max(1) {
            let mut run = churn::build(&cfg);
            let start = Instant::now();
            run.sim.run_until(cfg.duration);
            walls.push(start.elapsed().as_secs_f64());
            let (mut sync_events, mut sync_ns) = (0, 0);
            for i in 0..run.sim.shards() {
                let prof = run.sim.shard(i).profile();
                sync_events += prof.counts[ProfCat::ShardSync as usize];
                sync_ns += prof.nanos[ProfCat::ShardSync as usize];
            }
            let o = run.collect();
            match digest {
                None => digest = Some(o.digest),
                Some(d) => assert_eq!(
                    d, o.digest,
                    "sharded bench outcome varies across shard counts/reps"
                ),
            }
            kept = Some(ShardBench {
                shards: k,
                cores,
                threaded: run.sim.threaded(),
                wall_secs: 0.0,
                total_events: o.total_events,
                flows: cfg.conns,
                peak_queue_per_shard: o.peak_queue,
                handoffs: o.handoffs,
                epochs: o.epochs,
                shard_sync_events: sync_events,
                shard_sync_ns: sync_ns,
            });
        }
        walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        let mut bench = kept.expect("reps >= 1");
        bench.wall_secs = walls[walls.len() / 2];
        out.push(bench);
    }
    out
}

/// Runs the bench workload `cfg.reps` times and reports the median wall
/// time. Asserts every repetition produced the identical deterministic
/// outcome — a cheap end-to-end determinism check in passing.
pub fn measure(cfg: BenchConfig) -> BenchReport {
    assert!(cfg.reps >= 1, "--bench-reps must be >= 1");
    let mut walls = Vec::with_capacity(cfg.reps);
    let mut first: Option<BulkRun> = None;
    for _ in 0..cfg.reps {
        let cc = protocols::make(PROTOCOL, SEED);
        let sched = protocols::scheduler_for(PROTOCOL);
        let start = Instant::now();
        let run = run_bulk_sim(cc, sched, N_LINKS, cfg.sim_secs, SEED);
        walls.push(start.elapsed().as_secs_f64());
        match first {
            None => first = Some(run),
            Some(f) => assert_eq!(
                (f.events, f.delivered_bytes, f.peak_queue_len),
                (run.events, run.delivered_bytes, run.peak_queue_len),
                "bench workload is not deterministic across repetitions"
            ),
        }
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    BenchReport {
        cfg,
        run: first.expect("reps >= 1"),
        wall_secs: walls[walls.len() / 2],
    }
}

/// Extracts a numeric field from the flat committed JSON (hand-rolled, as
/// everywhere else in the repo: no serde in the dependency tree).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh measurement against the committed baseline file.
/// Returns an error line if events/sec regressed beyond the tolerance.
pub fn check(report: &BenchReport, baseline_path: &Path) -> Result<String, String> {
    let doc = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let committed = json_number(&doc, "events_per_sec")
        .ok_or_else(|| format!("no events_per_sec in {}", baseline_path.display()))?;
    let fresh = report.events_per_sec();
    let floor = committed * (1.0 - REGRESSION_TOLERANCE);
    let verdict = format!(
        "bench-check: fresh {fresh:.0} events/sec vs committed {committed:.0} (floor {floor:.0})"
    );
    if fresh < floor {
        Err(format!("{verdict} — REGRESSION"))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_parses_committed_fields() {
        let doc = "{\n  \"events_per_sec\": 123456,\n  \"wall_secs_median\": 1.5\n}\n";
        assert_eq!(json_number(doc, "events_per_sec"), Some(123456.0));
        assert_eq!(json_number(doc, "wall_secs_median"), Some(1.5));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn bench_measures_and_checks() {
        let report = measure(BenchConfig {
            sim_secs: 1,
            reps: 2,
        });
        assert!(report.run.events > 10_000, "{report:?}");
        assert!(report.wall_secs > 0.0);
        let json = report.to_json("timer-wheel", Some(("binary-heap", 1.0)), &[]);
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"baseline\""));

        let dir = std::env::temp_dir().join(format!("mpcc-bench-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, &json).unwrap();
        // Fresh == committed: passes the 20 % gate.
        assert!(check(&report, &path).is_ok());
        // An absurdly fast committed baseline: fails the gate.
        let fast = json.replace(
            &format!("\"events_per_sec\": {:.0}", report.events_per_sec()),
            "\"events_per_sec\": 99999999999",
        );
        std::fs::write(&path, fast).unwrap();
        assert!(check(&report, &path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
