//! The experiments binary: `experiments <id>... [--full] [--seed N]
//! [--runs N] [--jobs N] [--out DIR] [--trace FILE]
//! [--trace-filter LAYERS] [--faults SPEC]`, or `experiments all` /
//! `experiments list`.

use mpcc_experiments::runner::{Executor, TraceConfig};
use mpcc_experiments::scenarios::{self, ALL};
use mpcc_experiments::ExpConfig;
use mpcc_netsim::fault::FaultPlan;
use mpcc_telemetry::LayerMask;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut trace_mask = LayerMask::ALL;
    let mut faults = FaultPlan::NONE;
    let mut jobs: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => cfg.full = true,
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--runs" => {
                cfg.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--jobs needs an integer >= 1");
            }
            "--out" => {
                cfg.out_dir = it.next().expect("--out needs a directory").into();
            }
            "--trace" => {
                trace_path = Some(it.next().expect("--trace needs a file path"));
            }
            "--trace-filter" => {
                let spec = it.next().expect("--trace-filter needs layers");
                trace_mask = LayerMask::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("--trace-filter: {e}");
                    std::process::exit(2);
                });
            }
            "--faults" => {
                let spec = it.next().expect("--faults needs a spec");
                faults = FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("--faults: {e}");
                    std::process::exit(2);
                });
            }
            "list" => {
                println!("available experiments: {}", ALL.join(" "));
                return;
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>... | all | list  [--full] [--seed N] [--runs N] [--jobs N] \
             [--out DIR] [--trace FILE] [--trace-filter controller,transport,link] \
             [--faults 'reorder:p=0.05,extra=20ms;outage:at=5s,down=1s']"
        );
        eprintln!("ids: {}", ALL.join(" "));
        std::process::exit(2);
    }
    ids.dedup();
    let trace = trace_path.map(|p| TraceConfig {
        path: p.into(),
        mask: trace_mask,
    });
    cfg.exec = Executor::new(jobs, trace).with_faults(faults);
    for id in ids {
        let start = Instant::now();
        eprintln!(
            ">>> running {id} (full={}, seed={}, jobs={})",
            cfg.full,
            cfg.seed,
            cfg.exec.jobs()
        );
        let figures = scenarios::dispatch(&id, &cfg);
        for fig in figures {
            fig.emit(&cfg.out_dir);
        }
        eprintln!("<<< {id} done in {:.1}s", start.elapsed().as_secs_f64());
    }
}
