//! The experiments binary: `experiments <id>... [--full] [--seed N]
//! [--runs N] [--out DIR]`, or `experiments all` / `experiments list`.

use mpcc_experiments::scenarios::{self, ALL};
use mpcc_experiments::ExpConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => cfg.full = true,
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--runs" => {
                cfg.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--out" => {
                cfg.out_dir = it.next().expect("--out needs a directory").into();
            }
            "list" => {
                println!("available experiments: {}", ALL.join(" "));
                return;
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>... | all | list  [--full] [--seed N] [--runs N] [--out DIR]"
        );
        eprintln!("ids: {}", ALL.join(" "));
        std::process::exit(2);
    }
    ids.dedup();
    for id in ids {
        let start = Instant::now();
        eprintln!(">>> running {id} (full={}, seed={})", cfg.full, cfg.seed);
        let figures = scenarios::dispatch(&id, &cfg);
        for fig in figures {
            fig.emit(&cfg.out_dir);
        }
        eprintln!("<<< {id} done in {:.1}s", start.elapsed().as_secs_f64());
    }
}
