//! The experiments binary: `experiments <id>... [--full] [--seed N]
//! [--runs N] [--jobs N] [--shards N] [--full-scale] [--out DIR] [--trace FILE]
//! [--trace-filter LAYERS] [--metrics FILE] [--metrics-bin DUR]
//! [--faults SPEC]`, or `experiments all` / `experiments list`, or
//! `experiments report FILE` (flight-recorder Markdown from a metrics
//! stream), or `experiments udp [--udp-bytes N]` (real-socket loopback
//! demo), or `experiments check [--fluid] [--sweep] [--sweep-cases N]`
//! (theory oracles), or `experiments --bench [--bench-secs N]
//! [--bench-reps N] [--bench-check FILE] [--bench-baseline NAME:EPS]`.

use mpcc_experiments::bench::{self, BenchConfig};
use mpcc_experiments::check;
use mpcc_experiments::report;
use mpcc_experiments::runner::{Executor, MetricsConfig, TraceConfig};
use mpcc_experiments::scenarios::{self, ALL};
use mpcc_experiments::udp_demo;
use mpcc_experiments::ExpConfig;
use mpcc_netsim::fault::{parse_duration, FaultPlan};
use mpcc_simcore::{Clock, MonotonicClock};
use mpcc_telemetry::LayerMask;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut trace_mask = LayerMask::ALL;
    let mut metrics_path: Option<String> = None;
    let mut metrics_bin: Option<mpcc_simcore::SimDuration> = None;
    let mut report_mode = false;
    let mut faults = FaultPlan::NONE;
    let mut bench_mode = false;
    let mut check_mode = false;
    let mut check_fluid = false;
    let mut check_sweep = false;
    let mut sweep_cases: Option<usize> = None;
    let mut udp_mode = false;
    let mut udp_receiver = false;
    let mut udp_bytes = udp_demo::DEFAULT_BYTES;
    let mut bench_cfg = BenchConfig::default();
    let mut bench_check: Option<String> = None;
    let mut bench_baseline: Option<(String, f64)> = None;
    let mut jobs: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => cfg.full = true,
            "--bench" => bench_mode = true,
            "--bench-secs" => {
                bench_cfg.sim_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--bench-secs needs an integer >= 1");
            }
            "--bench-reps" => {
                bench_cfg.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--bench-reps needs an integer >= 1");
            }
            "--bench-check" => {
                bench_check = Some(it.next().expect("--bench-check needs a baseline file"));
            }
            "--bench-baseline" => {
                let spec = it
                    .next()
                    .expect("--bench-baseline needs NAME:EVENTS_PER_SEC");
                let (name, eps) = spec
                    .split_once(':')
                    .and_then(|(n, e)| e.parse::<f64>().ok().map(|e| (n.to_string(), e)))
                    .expect("--bench-baseline needs NAME:EVENTS_PER_SEC");
                bench_baseline = Some((name, eps));
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--runs" => {
                cfg.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--shards" => {
                cfg.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--shards needs an integer >= 1");
            }
            "--full-scale" => cfg.full_scale = true,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--jobs needs an integer >= 1");
            }
            "--out" => {
                cfg.out_dir = it.next().expect("--out needs a directory").into();
            }
            "--trace" => {
                trace_path = Some(it.next().expect("--trace needs a file path"));
            }
            "--trace-filter" => {
                let spec = it.next().expect("--trace-filter needs layers");
                trace_mask = LayerMask::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("--trace-filter: {e}");
                    std::process::exit(2);
                });
            }
            "--metrics" => {
                metrics_path = Some(it.next().expect("--metrics needs a file path"));
            }
            "--metrics-bin" => {
                let spec = it
                    .next()
                    .expect("--metrics-bin needs a duration (e.g. 500ms)");
                metrics_bin = Some(parse_duration(&spec).unwrap_or_else(|e| {
                    eprintln!("--metrics-bin: {e}");
                    std::process::exit(2);
                }));
            }
            "--faults" => {
                let spec = it.next().expect("--faults needs a spec");
                faults = FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("--faults: {e}");
                    std::process::exit(2);
                });
            }
            "list" => {
                println!("available experiments: {}", ALL.join(" "));
                return;
            }
            "check" => check_mode = true,
            "--fluid" => check_fluid = true,
            "--sweep" => check_sweep = true,
            "--sweep-cases" => {
                sweep_cases = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .expect("--sweep-cases needs an integer >= 1"),
                );
            }
            "report" => report_mode = true,
            "udp" => udp_mode = true,
            "--udp-receiver" => udp_receiver = true,
            "--udp-bytes" => {
                udp_bytes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--udp-bytes needs a byte count >= 1");
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
    }
    let metrics = |path: &str| {
        let mut mc = MetricsConfig::new(path.into());
        if let Some(bin) = metrics_bin {
            mc = mc.with_bin(bin);
        }
        mc
    };
    if udp_receiver {
        std::process::exit(udp_demo::serve_receiver(cfg.seed));
    }
    if udp_mode {
        let opts = udp_demo::DemoOpts {
            bytes: udp_bytes,
            seed: cfg.seed,
            trace: trace_path.map(|p| (p.into(), trace_mask)),
            metrics: metrics_path.map(|p| (p.into(), metrics_bin)),
        };
        std::process::exit(udp_demo::run(&opts));
    }
    if report_mode {
        // `experiments report FILE...`: flight-recorder Markdown from the
        // flushed metrics stream(s) of any earlier run.
        if ids.is_empty() {
            eprintln!("usage: experiments report METRICS_FILE...");
            std::process::exit(2);
        }
        for path in &ids {
            match report::render(std::path::Path::new(path)) {
                Ok(md) => print!("{md}"),
                Err(e) => {
                    eprintln!("report: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    if bench_mode {
        run_bench_mode(&cfg, bench_cfg, bench_check, bench_baseline);
        return;
    }
    if check_mode {
        let trace = trace_path.map(|p| TraceConfig {
            path: p.into(),
            mask: trace_mask,
        });
        cfg.exec = Executor::new(jobs, trace);
        if let Some(p) = &metrics_path {
            cfg.exec = cfg.exec.with_metrics(metrics(p));
        }
        // `check` alone runs the LMMF oracle; `--fluid` / `--sweep` select
        // the trajectory oracle and the randomized equilibrium sweep
        // instead (both flags run both). Any failing mode exits nonzero.
        let announce = |name: &str| {
            eprintln!(
                ">>> running theory-oracle check [{name}] (full={}, seed={}, jobs={})",
                cfg.full,
                cfg.seed,
                cfg.exec.jobs()
            );
        };
        let mut failed = false;
        let mut handle = |result: Result<String, String>| match result {
            Ok(report) => println!("{report}"),
            Err(report) => {
                eprintln!("{report}");
                failed = true;
            }
        };
        if check_fluid {
            announce("fluid trajectory");
            handle(check::run_fluid(&cfg));
        }
        if check_sweep {
            announce("equilibrium sweep");
            let mut specs = check::regression_specs();
            specs.extend(check::random_sweep_specs(
                cfg.seed,
                check::sweep_case_count(sweep_cases),
            ));
            handle(check::run_sweep(&cfg, &specs));
        }
        if !check_fluid && !check_sweep {
            announce("LMMF");
            handle(check::run(&cfg));
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>... | all | list  [--full] [--seed N] [--runs N] [--jobs N] \
             [--shards N] [--full-scale] \
             [--out DIR] [--trace FILE] [--trace-filter controller,transport,link] \
             [--metrics FILE] [--metrics-bin 500ms] \
             [--faults 'reorder:p=0.05,extra=20ms;outage:at=5s,down=1s']\n\
             or:    experiments check [--fluid] [--sweep] [--sweep-cases N] [--full] [--jobs N]\n\
             or:    experiments report METRICS_FILE...\n\
             or:    experiments udp [--udp-bytes N] [--seed N] [--trace FILE] [--metrics FILE]\n\
             or:    experiments --bench [--bench-secs N] [--bench-reps N] \
             [--bench-check FILE] [--bench-baseline NAME:EPS] [--out DIR]"
        );
        eprintln!("ids: {}", ALL.join(" "));
        std::process::exit(2);
    }
    ids.dedup();
    let trace = trace_path.map(|p| TraceConfig {
        path: p.into(),
        mask: trace_mask,
    });
    cfg.exec = Executor::new(jobs, trace).with_faults(faults);
    if let Some(p) = &metrics_path {
        cfg.exec = cfg.exec.with_metrics(metrics(p));
    }
    // Wall-clock timing goes through the Clock seam like every other
    // time source in the tree (the lint test in tests/wallclock_lint.rs
    // keeps raw `Instant::now()` out of non-bench code).
    let mut wall = MonotonicClock::new();
    for id in ids {
        let start = wall.now();
        eprintln!(
            ">>> running {id} (full={}, seed={}, jobs={})",
            cfg.full,
            cfg.seed,
            cfg.exec.jobs()
        );
        let figures = scenarios::dispatch(&id, &cfg);
        for fig in figures {
            fig.emit(&cfg.out_dir);
        }
        eprintln!(
            "<<< {id} done in {:.1}s",
            wall.elapsed_since(start).as_secs_f64()
        );
    }
    // A requested sink that captured nothing after running scenarios is a
    // failure, not a quiet success: every scenario emits transport events
    // at minimum, so an empty stream means telemetry was never attached
    // (the historical sharded-run blackout) or the filter matched nothing.
    let has_payload = |path: &std::path::Path, csv: bool| -> bool {
        use std::io::BufRead as _;
        // Header-only CSV counts as empty; reading two lines is enough.
        let need = 1 + usize::from(csv);
        std::fs::File::open(path)
            .map(|f| std::io::BufReader::new(f).lines().take(need).count() == need)
            .unwrap_or(false)
    };
    let mut starved = Vec::new();
    if let Some(tc) = cfg.exec.trace_config() {
        if !has_payload(&tc.path, tc.is_csv()) {
            starved.push(("--trace", tc.path.clone()));
        }
    }
    if let Some(mc) = cfg.exec.metrics_config() {
        if !has_payload(&mc.path, mc.is_csv()) {
            starved.push(("--metrics", mc.path.clone()));
        }
    }
    if !starved.is_empty() {
        for (flag, path) in &starved {
            eprintln!(
                "{flag} {}: no events were captured — the sink was never \
                 attached to a simulation, or --trace-filter excluded every \
                 emitted layer",
                path.display()
            );
        }
        std::process::exit(1);
    }
    // In checked builds (debug, or --features invariants) a clean exit
    // also certifies the runtime invariant layer stayed silent.
    let violations = mpcc_check::violations();
    if violations > 0 {
        eprintln!("{violations} runtime invariant violations");
        std::process::exit(1);
    }
}

/// `--bench`: measure the canonical bulk workload. With `--bench-check`,
/// compare against the committed baseline and exit nonzero on regression;
/// otherwise write `BENCH_simulator.json` into the output directory.
fn run_bench_mode(
    cfg: &ExpConfig,
    bench_cfg: BenchConfig,
    check: Option<String>,
    baseline: Option<(String, f64)>,
) {
    eprintln!(
        ">>> bench: {} x{} sim-secs, {} reps (queue: {})",
        bench::WORKLOAD,
        bench_cfg.sim_secs,
        bench_cfg.reps,
        mpcc_simcore::queue::QUEUE_IMPL,
    );
    let report = bench::measure(bench_cfg);
    eprintln!(
        "<<< bench: {:.1} sim-secs/wall-sec, {:.0} events/sec, {} events, peak queue {}",
        report.sim_secs_per_wall_sec(),
        report.events_per_sec(),
        report.run.events,
        report.run.peak_queue_len,
    );
    let prof = &report.run.profile;
    eprintln!(
        "    wheel: {} cascades, {} overflow promotions",
        prof.cascades, prof.overflow_promotions
    );
    if prof.enabled {
        // Per-category wall-clock attribution (profiler builds only).
        let total_ns = prof.total_nanos().max(1);
        eprintln!("    profile (first rep):");
        for cat in mpcc_simcore::ProfCat::all() {
            let (n, ns) = (prof.counts[cat as usize], prof.nanos[cat as usize]);
            if n == 0 {
                continue;
            }
            eprintln!(
                "      {:<12} {:>10} events  {:>12} ns  ({:>4.1}%  {:>5.0} ns/event)",
                cat.name(),
                n,
                ns,
                ns as f64 * 100.0 / total_ns as f64,
                ns as f64 / n as f64,
            );
        }
    }
    if let Some(path) = check {
        match bench::check(&report, std::path::Path::new(&path)) {
            Ok(line) => println!("{line}"),
            Err(line) => {
                eprintln!("{line}");
                std::process::exit(1);
            }
        }
        return;
    }
    // The sharded-engine sweep (churn workload at 1/2/4 shards). On this
    // gate only the single-instance number above is compared; the sweep
    // is recorded with its core count so speedups are interpretable.
    let sharded = bench::measure_sharded(bench_cfg.reps.min(3));
    for s in &sharded {
        eprintln!(
            "    shards={} ({} cores, {}): {:.0} events/sec aggregate, \
             {} handoffs, {} epochs, peak queue/shard {}",
            s.shards,
            s.cores,
            if s.threaded { "threaded" } else { "sequential" },
            s.events_per_sec(),
            s.handoffs,
            s.epochs,
            s.peak_queue_per_shard,
        );
        if s.shard_sync_events > 0 {
            eprintln!(
                "      shard_sync: {} events, {} ns",
                s.shard_sync_events, s.shard_sync_ns
            );
        }
    }
    let json = report.to_json(
        mpcc_simcore::queue::QUEUE_IMPL,
        baseline.as_ref().map(|(n, e)| (n.as_str(), *e)),
        &sharded,
    );
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_simulator.json");
    std::fs::write(&path, json).expect("write BENCH_simulator.json");
    println!("wrote {}", path.display());
}
