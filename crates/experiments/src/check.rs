//! `experiments check`: the theory-oracle harness.
//!
//! Three modes, all deterministic and byte-identical at any `--jobs`:
//!
//! * **LMMF equilibria** (default): runs the small parallel-link
//!   topologies the paper's theory section reasons about (Figs. 1–3 /
//!   §4–5) to steady state on the packet-level simulator and compares the
//!   measured equilibrium against the exact lexicographic max-min fair
//!   allocation computed by [`mpcc::theory::lmmf`]. Connection totals are
//!   always checked; the per-(connection, link) split is checked only for
//!   topologies where the LMMF split is unique.
//! * **Fluid trajectories** (`--fluid`): runs LIA, OLIA, and Balia on
//!   identical topologies through both the packet-level simulator and the
//!   RK4 integrator for Peng et al.'s fluid ODE ([`mpcc::theory::ode`]),
//!   and compares the *shape* of the rate trajectories — equilibrium
//!   level, convergence time, overshoot, rise time, and TCP-friendliness
//!   share — with per-controller tolerances (see `DESIGN.md` §15).
//! * **Randomized sweep** (`--sweep`): seeds × random parallel-link
//!   capacities/RTTs, each checked against both the LMMF oracle (MPCC
//!   connections) and the fluid equilibrium (coupled connections), far
//!   beyond the hand-picked topologies. Bounded by `MPCC_SWEEP_CASES`.
//!
//! Tolerances absorb wire overhead, probing loss and finite-run averaging
//! noise — the oracles are convergence checks, not bit-exact ones.

use crate::runner::{ConnSpec, Scenario};
use crate::ExpConfig;
use mpcc::theory::ode::{self, CoupledKind, FluidConfig, FluidTopo};
use mpcc::theory::{lmmf_allocation, lmmf_with_flows, ParallelNetSpec};
use mpcc_metrics::{TrajStats, Trajectory};
use mpcc_netsim::LinkParams;
use mpcc_simcore::rng::{splitmix64, SimRng};
use mpcc_simcore::{Rate, SimDuration};

/// Relative tolerance on per-connection totals and nonzero subflow rates.
pub const REL_TOL: f64 = 0.15;
/// Absolute floor (Mbps) — dominates for near-zero expected rates, where a
/// subflow still carries its probing floor.
pub const ABS_TOL: f64 = 10.0;

/// One oracle topology: a parallel-link network run with one MPCC-loss
/// connection per `spec.conns` entry.
struct OracleCase {
    name: &'static str,
    spec: ParallelNetSpec,
    /// Whether the LMMF per-(connection, link) split is unique, making the
    /// per-subflow rates checkable (totals are always checked).
    check_flows: bool,
    /// Reduced-scale run length, seconds (`--full` always runs the paper's
    /// 200 s). Symmetric shared-link topologies drain the shared subflow
    /// slowly and need longer than the 60 s that suffices elsewhere.
    reduced_secs: u64,
}

fn cases() -> Vec<OracleCase> {
    vec![
        OracleCase {
            // One MP connection pools two equal links (resource pooling,
            // §4.1): unique split (100, 100).
            name: "pool-solo",
            spec: ParallelNetSpec {
                capacities: vec![100.0, 100.0],
                conns: vec![vec![0, 1]],
            },
            check_flows: true,
            reduced_secs: 60,
        },
        OracleCase {
            // Fig. 3c: MP on {0, 1} vs SP on {1}. LMMF gives each a full
            // link, with the MP connection vacating the shared one.
            name: "sp-mp-share",
            spec: ParallelNetSpec {
                capacities: vec![100.0, 100.0],
                conns: vec![vec![0, 1], vec![1]],
            },
            check_flows: true,
            reduced_secs: 140,
        },
        OracleCase {
            // Two identical MP connections over the same two links: totals
            // are unique (100 each) but the split is not — totals only.
            name: "two-mp",
            spec: ParallelNetSpec {
                capacities: vec![100.0, 100.0],
                conns: vec![vec![0, 1], vec![0, 1]],
            },
            check_flows: false,
            reduced_secs: 60,
        },
        OracleCase {
            // Asymmetric capacities: SP on a 50 Mbps link, MP on {that,
            // 100 Mbps}. LMMF: SP keeps its whole link, MP vacates it.
            name: "asym-sp-mp",
            spec: ParallelNetSpec {
                capacities: vec![50.0, 100.0],
                conns: vec![vec![0], vec![0, 1]],
            },
            check_flows: true,
            reduced_secs: 60,
        },
    ]
}

fn scenario_for(case: &OracleCase, cfg: &ExpConfig, idx: u64) -> Scenario {
    let links: Vec<LinkParams> = case
        .spec
        .capacities
        .iter()
        .map(|&c| LinkParams::paper_default().with_capacity(Rate::from_mbps(c)))
        .collect();
    let conns: Vec<ConnSpec> = case
        .spec
        .conns
        .iter()
        .map(|ls| ConnSpec::bulk("mpcc-loss", ls.clone()))
        .collect();
    // Measure the last ~35 s (reduced) / 140 s (paper scale): equilibrium
    // behaviour, not the transient.
    let dur_secs = cfg.scale(case.reduced_secs, 200);
    let warm_secs = dur_secs - cfg.scale(35, 140);
    Scenario::new(cfg.seed.wrapping_add(idx), links, conns).with_duration(
        SimDuration::from_secs(dur_secs),
        SimDuration::from_secs(warm_secs),
    )
}

fn within(observed: f64, expected: f64) -> bool {
    (observed - expected).abs() <= (REL_TOL * expected).max(ABS_TOL)
}

/// Runs every oracle case and compares against the LMMF prediction.
///
/// Returns `Ok(report)` when every measurement is within tolerance and
/// `Err(report)` otherwise; the report is the human-readable comparison
/// table either way.
pub fn run(cfg: &ExpConfig) -> Result<String, String> {
    let cases = cases();
    let scenarios: Vec<Scenario> = cases
        .iter()
        .enumerate()
        .map(|(i, c)| scenario_for(c, cfg, i as u64))
        .collect();
    let warmups: Vec<_> = scenarios.iter().map(|s| s.warmup).collect();
    let results = cfg.exec.run_batch(scenarios);

    let mut out = String::new();
    let mut failures = 0usize;
    let mut checks = 0usize;
    let mut line = |s: String, ok: bool, failures: &mut usize| {
        if !ok {
            *failures += 1;
        }
        out.push_str(&s);
        out.push_str(if ok { "  ok\n" } else { "  FAIL\n" });
    };

    for (i, (case, result)) in cases.iter().zip(&results).enumerate() {
        let (totals, flows) = lmmf_with_flows(&case.spec);
        let warm = mpcc_simcore::SimTime::ZERO + warmups[i];
        for (c, conn) in result.conns.iter().enumerate() {
            checks += 1;
            line(
                format!(
                    "{:<12} conn {c} total: measured {:7.2} Mbps, lmmf {:7.2} Mbps",
                    case.name, conn.goodput_mbps, totals[c]
                ),
                within(conn.goodput_mbps, totals[c]),
                &mut failures,
            );
            if !case.check_flows {
                continue;
            }
            for (k, &l) in case.spec.conns[c].iter().enumerate() {
                let measured = conn.subflow_series[k].mean_after(warm);
                checks += 1;
                line(
                    format!(
                        "{:<12} conn {c} link {l}: measured {:7.2} Mbps, lmmf {:7.2} Mbps",
                        case.name, measured, flows[c][l]
                    ),
                    within(measured, flows[c][l]),
                    &mut failures,
                );
            }
        }
    }
    let verdict = format!(
        "theory oracle: {}/{checks} checks within tolerance (rel {REL_TOL}, abs {ABS_TOL} Mbps)",
        checks - failures
    );
    out.push_str(&verdict);
    if failures == 0 {
        Ok(out)
    } else {
        Err(out)
    }
}

// ---------------------------------------------------------------------------
// Fluid trajectory oracle (`experiments check --fluid`)
// ---------------------------------------------------------------------------

/// Tail fraction of a trajectory used as the equilibrium estimate.
const TRAJ_TAIL_FRAC: f64 = 0.25;
/// Relative half-width of the convergence band around the equilibrium.
const TRAJ_BAND_REL: f64 = 0.3;
/// Absolute floor on the band half-width, Mbps (absorbs sawtooth noise on
/// small-capacity links).
const TRAJ_BAND_ABS: f64 = 4.0;
/// Packet-level sampling cadence for trajectory extraction, ms (matches
/// the ODE's `sample_every`).
const TRAJ_SAMPLE_MS: u64 = 500;

/// Per-controller tolerances for the fluid trajectory comparison
/// (documented in DESIGN.md §15). `rate_*` bound the equilibrium-level
/// disagreement; the rest bound the shape metrics.
#[derive(Clone, Copy, Debug)]
pub struct FluidTol {
    /// Relative tolerance on the equilibrium rate.
    pub rate_rel: f64,
    /// Absolute floor on the equilibrium-rate tolerance, Mbps.
    pub rate_abs: f64,
    /// Tolerance on |sim − ode| convergence time, seconds.
    pub conv_abs_secs: f64,
    /// Tolerance on |sim − ode| overshoot fraction.
    pub overshoot_abs: f64,
    /// Tolerance on |sim − ode| rise-to-80% time, seconds.
    pub rise_abs_secs: f64,
    /// Tolerance on the single-path Reno capacity share (friendliness).
    pub share_abs: f64,
}

/// The tolerance set for one controller. OLIA's α terms make its fluid
/// field discontinuous (set-membership switches), so it gets the loosest
/// band; LIA and Balia track the ODE more closely.
pub fn fluid_tol(kind: CoupledKind) -> FluidTol {
    match kind {
        CoupledKind::Olia => FluidTol {
            rate_rel: 0.28,
            rate_abs: 10.0,
            conv_abs_secs: 20.0,
            overshoot_abs: 0.5,
            rise_abs_secs: 16.0,
            share_abs: 0.25,
        },
        _ => FluidTol {
            rate_rel: 0.15,
            rate_abs: 8.0,
            conv_abs_secs: 20.0,
            overshoot_abs: 0.5,
            rise_abs_secs: 12.0,
            share_abs: 0.15,
        },
    }
}

/// One fluid-oracle topology: the coupled connection spans every link;
/// `sp_reno_on` optionally adds a competing single-path Reno connection
/// (the friendliness check).
struct FluidCase {
    name: &'static str,
    caps: Vec<f64>,
    delays_ms: Vec<u64>,
    sp_reno_on: Option<usize>,
}

fn fluid_cases() -> Vec<FluidCase> {
    vec![
        FluidCase {
            // Resource pooling over two equal links.
            name: "fluid-pool",
            caps: vec![60.0, 60.0],
            delays_ms: vec![20, 20],
            sp_reno_on: None,
        },
        FluidCase {
            // 3:1 capacity asymmetry.
            name: "fluid-asym",
            caps: vec![30.0, 90.0],
            delays_ms: vec![20, 20],
            sp_reno_on: None,
        },
        FluidCase {
            // 4:1 RTT asymmetry at equal capacity.
            name: "fluid-rtt",
            caps: vec![50.0, 50.0],
            delays_ms: vec![10, 40],
            sp_reno_on: None,
        },
        FluidCase {
            // TCP-friendliness: single-path Reno shares link 1.
            name: "fluid-share",
            caps: vec![60.0, 60.0],
            delays_ms: vec![20, 20],
            sp_reno_on: Some(1),
        },
    ]
}

/// Link buffer for the fluid comparison: half a bandwidth-delay product
/// (floored at 8 packets). Small enough that the mean queueing delay stays
/// a modest, predictable fraction of the RTT the ODE uses.
fn fluid_buffer_bytes(cap_mbps: f64, delay_ms: u64) -> u64 {
    let bdp = cap_mbps * 1e6 / 8.0 * (2.0 * delay_ms as f64 / 1e3);
    ((0.5 * bdp) as u64).max(8 * 1500)
}

fn fluid_link(cap_mbps: f64, delay_ms: u64) -> LinkParams {
    LinkParams::paper_default()
        .with_capacity(Rate::from_mbps(cap_mbps))
        .with_delay(SimDuration::from_millis(delay_ms))
        .with_buffer(fluid_buffer_bytes(cap_mbps, delay_ms))
}

/// The ODE's operating RTT for a link: propagation plus half the buffer
/// drain time (the loss-based sawtooth keeps the queue half-full on
/// average).
fn fluid_rtt_secs(cap_mbps: f64, delay_ms: u64) -> f64 {
    let buf_secs = fluid_buffer_bytes(cap_mbps, delay_ms) as f64 * 8.0 / (cap_mbps * 1e6);
    2.0 * delay_ms as f64 / 1e3 + 0.5 * buf_secs
}

/// Builds the (packet-level scenario, fluid topology, per-connection
/// kinds) triple for one case × controller. Connection 0 is always the
/// coupled multipath connection.
fn fluid_setup(
    case: &FluidCase,
    kind: CoupledKind,
    cfg: &ExpConfig,
    idx: u64,
) -> (Scenario, FluidTopo, Vec<CoupledKind>) {
    let links: Vec<LinkParams> = case
        .caps
        .iter()
        .zip(&case.delays_ms)
        .map(|(&c, &d)| fluid_link(c, d))
        .collect();
    let all_links: Vec<usize> = (0..case.caps.len()).collect();
    let mut conns = vec![ConnSpec::bulk(kind.name(), all_links.clone())];
    let mut spec_conns = vec![all_links];
    let mut kinds = vec![kind];
    if let Some(l) = case.sp_reno_on {
        conns.push(ConnSpec::bulk("reno", vec![l]));
        spec_conns.push(vec![l]);
        kinds.push(CoupledKind::Reno);
    }
    let dur_secs = cfg.scale(60, 200);
    let sc = Scenario::new(cfg.seed.wrapping_add(idx), links, conns)
        .with_duration(
            SimDuration::from_secs(dur_secs),
            SimDuration::from_secs(dur_secs / 4),
        )
        .with_sampling(SimDuration::from_millis(TRAJ_SAMPLE_MS));
    let topo = FluidTopo {
        spec: ParallelNetSpec {
            capacities: case.caps.clone(),
            conns: spec_conns,
        },
        rtt_secs: case
            .caps
            .iter()
            .zip(&case.delays_ms)
            .map(|(&c, &d)| fluid_rtt_secs(c, d))
            .collect(),
    };
    (sc, topo, kinds)
}

/// The controllers the fluid oracle sweeps.
pub const FLUID_KINDS: [CoupledKind; 3] = [CoupledKind::Lia, CoupledKind::Olia, CoupledKind::Balia];

fn traj_stats(t: &Trajectory) -> TrajStats {
    t.stats(TRAJ_TAIL_FRAC, TRAJ_BAND_REL, TRAJ_BAND_ABS)
}

/// Runs the fluid trajectory oracle: every controller × topology, packet
/// simulator vs RK4 integrator, trajectory-shape metrics within
/// [`fluid_tol`]. `Ok`/`Err` carry the comparison table either way.
pub fn run_fluid(cfg: &ExpConfig) -> Result<String, String> {
    let cases = fluid_cases();
    let mut setups = Vec::new();
    for kind in FLUID_KINDS {
        for case in &cases {
            let idx = setups.len() as u64;
            let (sc, topo, kinds) = fluid_setup(case, kind, cfg, idx);
            setups.push((kind, case.name, case.sp_reno_on, sc, topo, kinds));
        }
    }
    let scenarios: Vec<Scenario> = setups.iter().map(|s| s.3.clone()).collect();
    let dur_secs = cfg.scale(60, 200) as f64;
    let results = cfg.exec.run_batch(scenarios);

    let mut out = String::new();
    let mut failures = 0usize;
    let mut checks = 0usize;
    let mut line = |s: String, ok: bool, failures: &mut usize, checks: &mut usize| {
        *checks += 1;
        if !ok {
            *failures += 1;
        }
        out.push_str(&s);
        out.push_str(if ok { "  ok\n" } else { "  FAIL\n" });
    };

    for ((kind, name, sp_on, _, topo, kinds), result) in setups.iter().zip(&results) {
        let tol = fluid_tol(*kind);
        let ode_cfg = FluidConfig {
            duration: dur_secs,
            sample_every: TRAJ_SAMPLE_MS as f64 / 1e3,
            ..FluidConfig::default()
        };
        let ft = ode::integrate(topo, kinds, &ode_cfg);

        let sim_t = Trajectory::from_series(&result.conns[0].series);
        let ode_t = Trajectory::from_samples(&ft.secs, &ft.conn_mbps[0]);
        let sim = traj_stats(&sim_t);
        let ode_s = traj_stats(&ode_t);
        let tag = format!("{:<12} {:<6}", name, kind.name());

        line(
            format!(
                "{tag} rate:      sim {:7.2} Mbps, ode {:7.2} Mbps",
                sim.final_mean, ode_s.final_mean
            ),
            (sim.final_mean - ode_s.final_mean).abs()
                <= (tol.rate_rel * ode_s.final_mean).max(tol.rate_abs),
            &mut failures,
            &mut checks,
        );
        line(
            format!(
                "{tag} converge:  sim {:7.1} s,    ode {:7.1} s",
                sim.convergence_secs, ode_s.convergence_secs
            ),
            sim.convergence_secs.is_finite()
                && ode_s.convergence_secs.is_finite()
                && (sim.convergence_secs - ode_s.convergence_secs).abs() <= tol.conv_abs_secs,
            &mut failures,
            &mut checks,
        );
        line(
            format!(
                "{tag} overshoot: sim {:7.3},      ode {:7.3}",
                sim.overshoot, ode_s.overshoot
            ),
            (sim.overshoot - ode_s.overshoot).abs() <= tol.overshoot_abs,
            &mut failures,
            &mut checks,
        );
        line(
            format!(
                "{tag} rise-80%:  sim {:7.1} s,    ode {:7.1} s",
                sim.rise_secs_80, ode_s.rise_secs_80
            ),
            sim.rise_secs_80.is_finite()
                && ode_s.rise_secs_80.is_finite()
                && (sim.rise_secs_80 - ode_s.rise_secs_80).abs() <= tol.rise_abs_secs,
            &mut failures,
            &mut checks,
        );
        if sp_on.is_some() {
            // Friendliness: the single-path Reno competitor's share of the
            // aggregate, simulator vs fluid model.
            let sim_sp = traj_stats(&Trajectory::from_series(&result.conns[1].series)).final_mean;
            let ode_sp =
                traj_stats(&Trajectory::from_samples(&ft.secs, &ft.conn_mbps[1])).final_mean;
            let sim_share = sim_sp / (sim_sp + sim.final_mean).max(1e-9);
            let ode_share = ode_sp / (ode_sp + ode_s.final_mean).max(1e-9);
            line(
                format!("{tag} sp-share:  sim {sim_share:7.3},      ode {ode_share:7.3}"),
                (sim_share - ode_share).abs() <= tol.share_abs,
                &mut failures,
                &mut checks,
            );
        }
    }
    let verdict = format!(
        "fluid oracle: {}/{checks} trajectory checks within tolerance",
        checks - failures
    );
    out.push_str(&verdict);
    if failures == 0 {
        Ok(out)
    } else {
        Err(out)
    }
}

// ---------------------------------------------------------------------------
// Randomized-topology equilibrium sweep (`experiments check --sweep`)
// ---------------------------------------------------------------------------

/// Relative tolerance for sweep equilibrium comparisons. Looser than the
/// hand-picked oracle's 0.15: random topologies include slow-drain shapes
/// (several multipath connections that must vacate shared links) whose
/// approach to the LMMF equilibrium is asymptotic on the run lengths the
/// sweep can afford.
pub const SWEEP_REL_TOL: f64 = 0.3;
/// Absolute floor for the sweep's LMMF-side comparison, Mbps.
pub const SWEEP_LMMF_ABS: f64 = 12.0;
/// LMMF-side relative tolerance for *slow-drain* topologies: when one
/// connection's link set is a strict subset of another's, max-min fairness
/// requires the superset connection to vacate the shared links almost
/// entirely, and MPCC's approach to that point is asymptotic — the rate
/// gap shrinks by only a few Mbps per minute at sweep run lengths.
pub const SWEEP_DRAIN_REL: f64 = 0.4;

/// True when some connection's link set is a strict subset of another's —
/// the shape whose LMMF point requires near-total vacation of every shared
/// link (see [`SWEEP_DRAIN_REL`]). Link lists must be sorted and deduped,
/// as the sweep generators guarantee.
pub fn is_slow_drain(conns: &[Vec<usize>]) -> bool {
    conns.iter().enumerate().any(|(i, a)| {
        conns
            .iter()
            .enumerate()
            .any(|(j, b)| i != j && a.len() < b.len() && a.iter().all(|l| b.contains(l)))
    })
}
/// Absolute floor for the sweep's fluid-side comparison, Mbps.
pub const SWEEP_FLUID_ABS: f64 = 10.0;

/// The sweep's fluid-side `(rel, abs Mbps)` tolerance for one controller.
/// OLIA is looser: its packet-level inter-loss estimator `ℓ` (bytes
/// between actual losses) deviates from the fluid expectation `1/q` on
/// shared-link multi-connection topologies, shifting the B set and with it
/// the equilibrium split.
pub fn sweep_fluid_tol(kind: CoupledKind) -> (f64, f64) {
    match kind {
        CoupledKind::Olia => (0.45, 12.0),
        _ => (SWEEP_REL_TOL, SWEEP_FLUID_ABS),
    }
}
/// Default number of random sweep topologies (`MPCC_SWEEP_CASES` and
/// `--sweep-cases` truncate or extend).
pub const SWEEP_DEFAULT_CASES: usize = 50;

/// One sweep topology: random (or regression-pinned) capacities, RTTs and
/// connection layout, checked against both oracles.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Case label (names the seed in failure messages).
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// Link capacities, Mbps.
    pub caps: Vec<f64>,
    /// One-way link delays, ms.
    pub delays_ms: Vec<u64>,
    /// Connection → link-set assignment.
    pub conns: Vec<Vec<usize>>,
    /// The coupled controller run on the fluid side of this case.
    pub kind: CoupledKind,
}

/// The 3 committed failing-shaped regression cases: shapes that historically
/// sit closest to the tolerance boundary (near-equal capacities flip LMMF
/// orderings; extreme asymmetry stresses the probing floor; high RTT ratio
/// stresses the coupled α terms). Replayed as named cases in
/// `tests/sweep_regression.rs` so a tolerance regression bisects cleanly.
pub fn regression_specs() -> Vec<SweepSpec> {
    vec![
        SweepSpec {
            name: "near-equal-caps".into(),
            seed: 0x5EED_0001,
            caps: vec![40.0, 40.4],
            delays_ms: vec![20, 20],
            conns: vec![vec![0, 1]],
            kind: CoupledKind::Lia,
        },
        SweepSpec {
            name: "extreme-asym".into(),
            seed: 0x5EED_0002,
            caps: vec![8.0, 80.0],
            delays_ms: vec![20, 20],
            conns: vec![vec![0, 1]],
            kind: CoupledKind::Balia,
        },
        SweepSpec {
            name: "high-rtt-ratio".into(),
            seed: 0x5EED_0003,
            caps: vec![40.0, 40.0],
            delays_ms: vec![5, 45],
            conns: vec![vec![0, 1]],
            kind: CoupledKind::Olia,
        },
    ]
}

/// Generates `count` random sweep topologies from `master_seed`: 2–3
/// parallel links with capacities in 15–70 Mbps and one-way delays in
/// 8–35 ms, 1–2 connections on random distinct link sets, controllers
/// cycling LIA/OLIA/Balia. Pure function of its arguments.
pub fn random_sweep_specs(master_seed: u64, count: usize) -> Vec<SweepSpec> {
    let mut rng = SimRng::seed_from_u64(splitmix64(master_seed ^ 0x5EED_F1D0));
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let n_links = 2 + rng.index(2);
        let caps: Vec<f64> = (0..n_links)
            .map(|_| (rng.range_f64(15.0, 70.0) * 10.0).round() / 10.0)
            .collect();
        let delays_ms: Vec<u64> = (0..n_links).map(|_| rng.range_u64(8, 36)).collect();
        let n_conns = 1 + rng.index(2);
        let conns: Vec<Vec<usize>> = (0..n_conns)
            .map(|_| {
                let size = 1 + rng.index(n_links);
                // Distinct links: draw from a shrinking pool.
                let mut pool: Vec<usize> = (0..n_links).collect();
                let mut links: Vec<usize> = (0..size)
                    .map(|_| pool.swap_remove(rng.index(pool.len())))
                    .collect();
                links.sort_unstable();
                links
            })
            .collect();
        let kind = FLUID_KINDS[i % FLUID_KINDS.len()];
        out.push(SweepSpec {
            name: format!("rand-{i:03}-{}", kind.name()),
            seed: splitmix64(master_seed ^ splitmix64(0xCA5E_0000 + i as u64)),
            caps,
            delays_ms,
            conns,
            kind,
        });
    }
    out
}

/// The sweep's random-case count: `--sweep-cases` (passed as `cli`), else
/// `MPCC_SWEEP_CASES`, else [`SWEEP_DEFAULT_CASES`].
pub fn sweep_case_count(cli: Option<usize>) -> usize {
    cli.or_else(|| {
        std::env::var("MPCC_SWEEP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
    })
    .unwrap_or(SWEEP_DEFAULT_CASES)
    .max(1)
}

fn sweep_links(spec: &SweepSpec) -> Vec<LinkParams> {
    spec.caps
        .iter()
        .zip(&spec.delays_ms)
        .map(|(&c, &d)| fluid_link(c, d))
        .collect()
}

fn sweep_net_spec(spec: &SweepSpec) -> ParallelNetSpec {
    ParallelNetSpec {
        capacities: spec.caps.clone(),
        conns: spec.conns.clone(),
    }
}

/// Runs every spec against both oracles: an MPCC-loss scenario checked
/// against the LMMF totals, and a coupled-controller scenario checked
/// against the fluid-ODE equilibrium. One `run_batch` keeps the whole
/// sweep deterministic at any `--jobs`.
pub fn run_sweep(cfg: &ExpConfig, specs: &[SweepSpec]) -> Result<String, String> {
    // Connections that must *vacate* a shared link under LMMF drain it
    // slowly — the same reason the hand-picked sp-mp-share oracle case
    // runs 140 s — so the MPCC (LMMF) side gets the longest runs. The
    // coupled controllers reach their fluid equilibrium faster.
    let lmmf_secs = cfg.scale(200, 400);
    let fluid_secs = cfg.scale(140, 280);
    let tail = cfg.scale(40, 80);
    let mk_scenario = |spec: &SweepSpec, proto: &str, dur: u64, salt: u64| {
        let conns: Vec<ConnSpec> = spec
            .conns
            .iter()
            .map(|ls| ConnSpec::bulk(proto, ls.clone()))
            .collect();
        Scenario::new(spec.seed.wrapping_add(salt), sweep_links(spec), conns).with_duration(
            SimDuration::from_secs(dur),
            SimDuration::from_secs(dur - tail),
        )
    };
    // Two scenarios per spec, interleaved: 2i = LMMF side, 2i+1 = fluid side.
    let scenarios: Vec<Scenario> = specs
        .iter()
        .flat_map(|spec| {
            [
                mk_scenario(spec, "mpcc-loss", lmmf_secs, 0),
                mk_scenario(spec, spec.kind.name(), fluid_secs, 1),
            ]
        })
        .collect();
    let results = cfg.exec.run_batch(scenarios);

    let mut out = String::new();
    let mut failures = 0usize;
    let mut checks = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let net = sweep_net_spec(spec);
        let lmmf = lmmf_allocation(&net);
        let topo = FluidTopo {
            spec: net.clone(),
            rtt_secs: spec
                .caps
                .iter()
                .zip(&spec.delays_ms)
                .map(|(&c, &d)| fluid_rtt_secs(c, d))
                .collect(),
        };
        let kinds = vec![spec.kind; spec.conns.len()];
        let fluid_eq = ode::equilibrium(
            &topo,
            &kinds,
            &FluidConfig {
                duration: fluid_secs as f64,
                ..FluidConfig::default()
            },
        );
        let shape = format!(
            "caps {:?} delays {:?} conns {:?}",
            spec.caps, spec.delays_ms, spec.conns
        );
        let (lmmf_run, fluid_run) = (&results[2 * i], &results[2 * i + 1]);
        let lmmf_rel = if is_slow_drain(&spec.conns) {
            SWEEP_DRAIN_REL
        } else {
            SWEEP_REL_TOL
        };
        for (c, conn) in lmmf_run.conns.iter().enumerate() {
            checks += 1;
            let ok =
                (conn.goodput_mbps - lmmf[c]).abs() <= (lmmf_rel * lmmf[c]).max(SWEEP_LMMF_ABS);
            if !ok {
                failures += 1;
                out.push_str(&format!(
                    "{} conn {c} lmmf: measured {:7.2} Mbps, lmmf {:7.2} Mbps ({shape})  FAIL\n",
                    spec.name, conn.goodput_mbps, lmmf[c]
                ));
            }
        }
        let (fluid_rel, fluid_abs) = sweep_fluid_tol(spec.kind);
        for (c, conn) in fluid_run.conns.iter().enumerate() {
            checks += 1;
            let ok =
                (conn.goodput_mbps - fluid_eq[c]).abs() <= (fluid_rel * fluid_eq[c]).max(fluid_abs);
            if !ok {
                failures += 1;
                out.push_str(&format!(
                    "{} conn {c} {}: measured {:7.2} Mbps, ode {:7.2} Mbps ({shape})  FAIL\n",
                    spec.name,
                    spec.kind.name(),
                    conn.goodput_mbps,
                    fluid_eq[c]
                ));
            }
        }
    }
    let verdict = format!(
        "equilibrium sweep: {}/{checks} checks within tolerance over {} topologies \
         (rel {SWEEP_REL_TOL}, abs lmmf {SWEEP_LMMF_ABS} / fluid {SWEEP_FLUID_ABS} Mbps)",
        checks - failures,
        specs.len()
    );
    out.push_str(&verdict);
    if failures == 0 {
        Ok(out)
    } else {
        Err(out)
    }
}
