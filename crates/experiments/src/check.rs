//! `experiments check`: the LMMF theory-oracle harness.
//!
//! Runs the small parallel-link topologies the paper's theory section
//! reasons about (Figs. 1–3 / §4–5) to steady state on the packet-level
//! simulator and compares the measured equilibrium against the exact
//! lexicographic max-min fair allocation computed by
//! [`mpcc::theory::lmmf`]. Connection totals are always checked; the
//! per-(connection, link) split is checked only for topologies where the
//! LMMF split is unique. Tolerances (see `DESIGN.md` §12) absorb wire
//! overhead, probing loss and finite-run averaging noise — the oracle is a
//! convergence check, not a bit-exact one.

use crate::runner::{ConnSpec, Scenario};
use crate::ExpConfig;
use mpcc::theory::{lmmf_with_flows, ParallelNetSpec};
use mpcc_netsim::LinkParams;
use mpcc_simcore::{Rate, SimDuration};

/// Relative tolerance on per-connection totals and nonzero subflow rates.
pub const REL_TOL: f64 = 0.15;
/// Absolute floor (Mbps) — dominates for near-zero expected rates, where a
/// subflow still carries its probing floor.
pub const ABS_TOL: f64 = 10.0;

/// One oracle topology: a parallel-link network run with one MPCC-loss
/// connection per `spec.conns` entry.
struct OracleCase {
    name: &'static str,
    spec: ParallelNetSpec,
    /// Whether the LMMF per-(connection, link) split is unique, making the
    /// per-subflow rates checkable (totals are always checked).
    check_flows: bool,
    /// Reduced-scale run length, seconds (`--full` always runs the paper's
    /// 200 s). Symmetric shared-link topologies drain the shared subflow
    /// slowly and need longer than the 60 s that suffices elsewhere.
    reduced_secs: u64,
}

fn cases() -> Vec<OracleCase> {
    vec![
        OracleCase {
            // One MP connection pools two equal links (resource pooling,
            // §4.1): unique split (100, 100).
            name: "pool-solo",
            spec: ParallelNetSpec {
                capacities: vec![100.0, 100.0],
                conns: vec![vec![0, 1]],
            },
            check_flows: true,
            reduced_secs: 60,
        },
        OracleCase {
            // Fig. 3c: MP on {0, 1} vs SP on {1}. LMMF gives each a full
            // link, with the MP connection vacating the shared one.
            name: "sp-mp-share",
            spec: ParallelNetSpec {
                capacities: vec![100.0, 100.0],
                conns: vec![vec![0, 1], vec![1]],
            },
            check_flows: true,
            reduced_secs: 140,
        },
        OracleCase {
            // Two identical MP connections over the same two links: totals
            // are unique (100 each) but the split is not — totals only.
            name: "two-mp",
            spec: ParallelNetSpec {
                capacities: vec![100.0, 100.0],
                conns: vec![vec![0, 1], vec![0, 1]],
            },
            check_flows: false,
            reduced_secs: 60,
        },
        OracleCase {
            // Asymmetric capacities: SP on a 50 Mbps link, MP on {that,
            // 100 Mbps}. LMMF: SP keeps its whole link, MP vacates it.
            name: "asym-sp-mp",
            spec: ParallelNetSpec {
                capacities: vec![50.0, 100.0],
                conns: vec![vec![0], vec![0, 1]],
            },
            check_flows: true,
            reduced_secs: 60,
        },
    ]
}

fn scenario_for(case: &OracleCase, cfg: &ExpConfig, idx: u64) -> Scenario {
    let links: Vec<LinkParams> = case
        .spec
        .capacities
        .iter()
        .map(|&c| LinkParams::paper_default().with_capacity(Rate::from_mbps(c)))
        .collect();
    let conns: Vec<ConnSpec> = case
        .spec
        .conns
        .iter()
        .map(|ls| ConnSpec::bulk("mpcc-loss", ls.clone()))
        .collect();
    // Measure the last ~35 s (reduced) / 140 s (paper scale): equilibrium
    // behaviour, not the transient.
    let dur_secs = cfg.scale(case.reduced_secs, 200);
    let warm_secs = dur_secs - cfg.scale(35, 140);
    Scenario::new(cfg.seed.wrapping_add(idx), links, conns).with_duration(
        SimDuration::from_secs(dur_secs),
        SimDuration::from_secs(warm_secs),
    )
}

fn within(observed: f64, expected: f64) -> bool {
    (observed - expected).abs() <= (REL_TOL * expected).max(ABS_TOL)
}

/// Runs every oracle case and compares against the LMMF prediction.
///
/// Returns `Ok(report)` when every measurement is within tolerance and
/// `Err(report)` otherwise; the report is the human-readable comparison
/// table either way.
pub fn run(cfg: &ExpConfig) -> Result<String, String> {
    let cases = cases();
    let scenarios: Vec<Scenario> = cases
        .iter()
        .enumerate()
        .map(|(i, c)| scenario_for(c, cfg, i as u64))
        .collect();
    let warmups: Vec<_> = scenarios.iter().map(|s| s.warmup).collect();
    let results = cfg.exec.run_batch(scenarios);

    let mut out = String::new();
    let mut failures = 0usize;
    let mut checks = 0usize;
    let mut line = |s: String, ok: bool, failures: &mut usize| {
        if !ok {
            *failures += 1;
        }
        out.push_str(&s);
        out.push_str(if ok { "  ok\n" } else { "  FAIL\n" });
    };

    for (i, (case, result)) in cases.iter().zip(&results).enumerate() {
        let (totals, flows) = lmmf_with_flows(&case.spec);
        let warm = mpcc_simcore::SimTime::ZERO + warmups[i];
        for (c, conn) in result.conns.iter().enumerate() {
            checks += 1;
            line(
                format!(
                    "{:<12} conn {c} total: measured {:7.2} Mbps, lmmf {:7.2} Mbps",
                    case.name, conn.goodput_mbps, totals[c]
                ),
                within(conn.goodput_mbps, totals[c]),
                &mut failures,
            );
            if !case.check_flows {
                continue;
            }
            for (k, &l) in case.spec.conns[c].iter().enumerate() {
                let measured = conn.subflow_series[k].mean_after(warm);
                checks += 1;
                line(
                    format!(
                        "{:<12} conn {c} link {l}: measured {:7.2} Mbps, lmmf {:7.2} Mbps",
                        case.name, measured, flows[c][l]
                    ),
                    within(measured, flows[c][l]),
                    &mut failures,
                );
            }
        }
    }
    let verdict = format!(
        "theory oracle: {}/{checks} checks within tolerance (rel {REL_TOL}, abs {ABS_TOL} Mbps)",
        checks - failures
    );
    out.push_str(&verdict);
    if failures == 0 {
        Ok(out)
    } else {
        Err(out)
    }
}
