//! Protocol factory: maps the paper's protocol labels to controller
//! instances and scheduler choices.

use mpcc::{ConnectionLevel, Mpcc, MpccConfig, StateConfig};
use mpcc_cc::{balia, cubic, lia, olia, reno, Bbr, MpCubic, WVegas};
use mpcc_transport::{MultipathCc, SchedulerKind};

/// Every multipath protocol evaluated in the paper's figures.
pub const MULTIPATH_PROTOCOLS: [&str; 8] = [
    "mpcc-latency",
    "mpcc-loss",
    "lia",
    "olia",
    "balia",
    "wvegas",
    "reno",
    "bbr",
];

/// Instantiates a controller by its label. `seed` feeds protocol-internal
/// randomness (probe ordering).
pub fn make(name: &str, seed: u64) -> Box<dyn MultipathCc> {
    match name {
        "mpcc-loss" => Box::new(Mpcc::new(MpccConfig::loss().with_seed(seed))),
        "mpcc-latency" => Box::new(Mpcc::new(MpccConfig::latency().with_seed(seed))),
        "mpcc-conn-level" => Box::new(ConnectionLevel::new(StateConfig::default(), seed)),
        "vivace" => Box::new(Mpcc::vivace(seed)),
        "vivace-latency" => Box::new(Mpcc::vivace_latency(seed)),
        "lia" => Box::new(lia()),
        "olia" => Box::new(olia()),
        "balia" => Box::new(balia()),
        "wvegas" => Box::new(WVegas::new()),
        "mpcubic" => Box::new(MpCubic::new()),
        "reno" => Box::new(reno()),
        "cubic" => Box::new(cubic()),
        "bbr" => Box::new(Bbr::new()),
        other => panic!("unknown protocol {other:?}"),
    }
}

/// The scheduler the paper pairs with each protocol (§7.1: the rate-based
/// scheduler for rate-based schemes, the default scheduler for
/// window-based ones).
pub fn scheduler_for(name: &str) -> SchedulerKind {
    match name {
        "mpcc-loss" | "mpcc-latency" | "mpcc-conn-level" | "vivace" | "vivace-latency" | "bbr" => {
            SchedulerKind::paper_rate_based()
        }
        _ => SchedulerKind::Default,
    }
}

/// The single-path competitor the paper pairs with a multipath protocol
/// (§7.2.1: "PCC Vivace for MPCC and TCP Reno for MPTCP").
pub fn single_path_peer(multipath: &str) -> &'static str {
    match multipath {
        "mpcc-loss" => "vivace",
        "mpcc-latency" => "vivace-latency",
        "bbr" => "bbr",
        "cubic" => "cubic",
        _ => "reno",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_listed_protocol() {
        for name in MULTIPATH_PROTOCOLS {
            let cc = make(name, 1);
            assert_eq!(cc.name(), name);
        }
    }

    #[test]
    fn rate_based_protocols_get_the_rate_scheduler() {
        assert_eq!(
            scheduler_for("mpcc-loss"),
            SchedulerKind::paper_rate_based()
        );
        assert_eq!(scheduler_for("bbr"), SchedulerKind::paper_rate_based());
        assert_eq!(scheduler_for("lia"), SchedulerKind::Default);
        assert_eq!(scheduler_for("reno"), SchedulerKind::Default);
    }

    #[test]
    fn peers_match_paper_pairings() {
        assert_eq!(single_path_peer("mpcc-loss"), "vivace");
        assert_eq!(single_path_peer("lia"), "reno");
        assert_eq!(single_path_peer("bbr"), "bbr");
    }

    #[test]
    #[should_panic(expected = "unknown protocol")]
    fn unknown_protocol_panics() {
        make("quic-magic", 1);
    }
}
