//! `experiments udp`: the real-socket loopback demo.
//!
//! Two processes move a finite bulk transfer over two UDP "paths" on
//! 127.0.0.1 — each path its own socket pair — under the MPCC controller,
//! driven by the `mpcc-udp` socket loop against the monotonic clock. The
//! parent process is the sender; it re-invokes its own binary with
//! `--udp-receiver` to run the receiver, learns the receiver's ports from
//! its first stdout line, and streams until the transfer completes or the
//! deadline passes.
//!
//! The sender emits the same `mpcc-telemetry` events a simulated run
//! does, so `--trace`, `--metrics`/`--metrics-bin`, and `experiments
//! report` work unchanged on a real-socket run. Exit status is nonzero if
//! the transfer does not complete, if either path carried no data, or if
//! any runtime invariant tripped (`--features invariants`).

use crate::protocols;
use mpcc_netsim::endpoint_rng;
use mpcc_simcore::{SimDuration, SimTime};
use mpcc_telemetry::{
    CsvSink, JsonlSink, LayerMask, MetricsPipeline, PipelineConfig, TeeSink, TraceSink, Tracer,
};
use mpcc_transport::wire::{EndpointId, PathId, MSS_PAYLOAD};
use mpcc_transport::{MpReceiver, MpSender, SenderConfig};
use mpcc_udp::{UdpPath, UdpPeer};
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::UdpSocket;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// Protocol label the demo runs (the paper's loss-mode MPCC).
const PROTOCOL: &str = "mpcc-loss";
/// Default transfer size: comfortably past 10 MB so the controller gets
/// through several monitor intervals on both paths.
pub const DEFAULT_BYTES: u64 = 12_000_000;
/// Receive-buffer credit advertised by the receiver.
const RCV_BUFFER: u64 = 300_000_000;
/// Base-RTT hint handed to the socket driver for loopback paths.
const RTT_HINT: SimDuration = SimDuration::from_millis(2);
/// Wall-clock budget for the sender's transfer.
const SENDER_DEADLINE: SimTime = SimTime::from_secs(60);
/// Wall-clock budget for the receiver process (it normally exits much
/// earlier, as soon as traffic goes idle).
const RECEIVER_DEADLINE: SimTime = SimTime::from_secs(120);
/// Receiver slice width between idle checks.
const RECEIVER_SLICE: SimDuration = SimDuration::from_millis(500);
/// Receiver exits once it has seen traffic and then none for this long.
const RECEIVER_IDLE_EXIT: SimDuration = SimDuration::from_secs(3);

/// Options the CLI collects for `experiments udp`.
#[derive(Debug)]
pub struct DemoOpts {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Seed for the controller and driver rng streams.
    pub seed: u64,
    /// `--trace FILE` with its `--trace-filter` mask.
    pub trace: Option<(PathBuf, LayerMask)>,
    /// `--metrics FILE` with its `--metrics-bin` width (`None` keeps the
    /// pipeline default).
    pub metrics: Option<(PathBuf, Option<SimDuration>)>,
}

impl Default for DemoOpts {
    fn default() -> Self {
        DemoOpts {
            bytes: DEFAULT_BYTES,
            seed: crate::ExpConfig::default().seed,
            trace: None,
            metrics: None,
        }
    }
}

/// Child mode (`experiments --udp-receiver`): bind two loopback sockets,
/// report their ports on stdout as `PORTS <p0> <p1>`, then serve an MPCC
/// receiver until traffic goes idle. Returns the process exit code.
pub fn serve_receiver(seed: u64) -> i32 {
    match try_serve_receiver(seed) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("udp receiver: {e}");
            1
        }
    }
}

fn try_serve_receiver(seed: u64) -> io::Result<i32> {
    let r0 = UdpSocket::bind("127.0.0.1:0")?;
    let r1 = UdpSocket::bind("127.0.0.1:0")?;
    let (p0, p1) = (r0.local_addr()?.port(), r1.local_addr()?.port());
    let mut peer = UdpPeer::new(
        EndpointId(1),
        endpoint_rng(seed, EndpointId(1)),
        Tracer::off(),
        vec![
            UdpPath::listening(r0, RTT_HINT),
            UdpPath::listening(r1, RTT_HINT),
        ],
        Box::new(MpReceiver::new(RCV_BUFFER)),
    )?;
    // The port line is the rendezvous: the parent blocks on it before
    // aiming its sender sockets.
    println!("PORTS {p0} {p1}");
    io::stdout().flush()?;

    // Serve in slices so we can watch the datagram counter: exit once
    // traffic has flowed and then stopped (the sender is done and gone),
    // or at the hard deadline if the sender never finishes.
    let mut seen = 0u64;
    let mut last_change = SimTime::ZERO;
    loop {
        let now = peer.now();
        if now >= RECEIVER_DEADLINE {
            eprintln!("udp receiver: deadline passed with sender still active");
            return Ok(1);
        }
        peer.run(now + RECEIVER_SLICE, |_| false);
        let got = peer.stats().received_datagrams;
        let t = peer.now();
        if got != seen {
            seen = got;
            last_change = t;
        } else if got > 0 && t.saturating_since(last_change) >= RECEIVER_IDLE_EXIT {
            let st = peer.stats();
            eprintln!(
                "udp receiver: done ({} datagrams, {} decode errors)",
                st.received_datagrams, st.decode_errors
            );
            return Ok(if st.decode_errors == 0 { 0 } else { 1 });
        }
    }
}

/// Parent mode (`experiments udp`): run the two-path loopback transfer
/// end to end. Returns the process exit code.
pub fn run(opts: &DemoOpts) -> i32 {
    match try_run(opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("udp demo: {e}");
            1
        }
    }
}

/// Builds the sender's tracer from `--trace`/`--metrics`, mirroring the
/// runner's tee discipline: the trace branch keeps its filter mask, the
/// metrics pipeline always sees every layer. Single run, so records go
/// straight to the final files — no part-file merge step.
fn make_tracer(opts: &DemoOpts) -> io::Result<Tracer> {
    let trace_sink: Option<(Arc<dyn TraceSink>, LayerMask)> = match &opts.trace {
        None => None,
        Some((path, mask)) => {
            let sink: Arc<dyn TraceSink> = if path.extension().is_some_and(|e| e == "csv") {
                Arc::new(CsvSink::create(path)?)
            } else {
                Arc::new(JsonlSink::create(path)?)
            };
            Some((sink, *mask))
        }
    };
    let metrics_sink: Option<Arc<dyn TraceSink>> = match &opts.metrics {
        None => None,
        Some((path, bin)) => {
            let mut cfg = PipelineConfig::default().with_run(0);
            if let Some(bin) = bin {
                cfg = cfg.with_bin(*bin);
            }
            Some(Arc::new(MetricsPipeline::create(cfg, path)?) as Arc<dyn TraceSink>)
        }
    };
    Ok(match (trace_sink, metrics_sink) {
        (None, None) => Tracer::off(),
        (Some((sink, mask)), None) => Tracer::new(sink, mask),
        (None, Some(pipe)) => Tracer::new(pipe, LayerMask::ALL),
        (Some((sink, mask)), Some(pipe)) => {
            let tee = TeeSink::new(vec![(sink, mask), (pipe, LayerMask::ALL)]);
            Tracer::new(Arc::new(tee), LayerMask::ALL)
        }
    })
}

/// Spawns the receiver process and reads its port line.
fn spawn_receiver(seed: u64) -> io::Result<(Child, u16, u16)> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--udp-receiver")
        .arg("--seed")
        .arg(seed.to_string())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let ports: Vec<u16> = line
        .trim()
        .strip_prefix("PORTS ")
        .map(|rest| rest.split_whitespace().filter_map(|p| p.parse().ok()))
        .into_iter()
        .flatten()
        .collect();
    if ports.len() != 2 {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("receiver handshake: expected 'PORTS <p0> <p1>', got {line:?}"),
        ));
    }
    Ok((child, ports[0], ports[1]))
}

fn try_run(opts: &DemoOpts) -> io::Result<i32> {
    mpcc_check::reset();
    let tracer = make_tracer(opts)?;
    let (mut child, p0, p1) = spawn_receiver(opts.seed)?;
    eprintln!(
        ">>> udp demo: {} bytes over two loopback paths (ports {p0}/{p1}), \
         protocol {PROTOCOL}, seed {}",
        opts.bytes, opts.seed
    );

    let result = run_sender(opts, &tracer, p0, p1);
    tracer.flush();
    let _ = child.kill();
    let _ = child.wait();
    result
}

/// The sender half: aims two sockets at the receiver's ports, streams the
/// transfer, prints the summary, and decides the exit code.
fn run_sender(opts: &DemoOpts, tracer: &Tracer, p0: u16, p1: u16) -> io::Result<i32> {
    let s0 = UdpSocket::bind("127.0.0.1:0")?;
    let s1 = UdpSocket::bind("127.0.0.1:0")?;
    let cfg = SenderConfig::file(EndpointId(1), vec![PathId(0), PathId(1)], opts.bytes)
        .with_scheduler(protocols::scheduler_for(PROTOCOL));
    let cc = protocols::make(PROTOCOL, opts.seed);
    let mut sender = UdpPeer::new(
        EndpointId(0),
        endpoint_rng(opts.seed, EndpointId(0)),
        tracer.clone(),
        vec![
            UdpPath::to(s0, format!("127.0.0.1:{p0}").parse().unwrap(), RTT_HINT),
            UdpPath::to(s1, format!("127.0.0.1:{p1}").parse().unwrap(), RTT_HINT),
        ],
        Box::new(MpSender::new(cfg, cc)),
    )?;

    let completed = sender.run(SENDER_DEADLINE, |ep| {
        ep.as_any()
            .downcast_ref::<MpSender>()
            .expect("sender endpoint")
            .is_complete()
    });
    let now = sender.now();
    let elapsed = now.as_secs_f64();
    let stats = sender.stats();
    let snd = sender.endpoint::<MpSender>();

    let mut failures: Vec<String> = Vec::new();
    if !completed {
        failures.push(format!(
            "transfer incomplete at deadline: {} of {} bytes acked",
            snd.data_acked(),
            opts.bytes
        ));
    }
    println!(
        "udp demo: {} of {} bytes acked in {elapsed:.2}s ({:.1} Mbit/s goodput)",
        snd.data_acked(),
        opts.bytes,
        snd.data_acked() as f64 * 8.0 / 1e6 / elapsed.max(1e-9),
    );
    for i in 0..2 {
        let st = snd.subflow_stats(i, now);
        println!(
            "  path{i}: {} bytes delivered ({:.1} Mbit/s), srtt {:.2} ms, {} lost pkts",
            st.delivered_bytes,
            st.delivered_bytes as f64 * 8.0 / 1e6 / elapsed.max(1e-9),
            st.latest_rtt.as_millis_f64(),
            st.lost_packets,
        );
        if st.delivered_bytes == 0 {
            failures.push(format!("path{i} delivered no data"));
        }
    }
    println!(
        "  driver: {} datagrams sent ({} dropped at send), {} received, \
         {} decode errors, {} timers",
        stats.sent_datagrams,
        stats.send_drops,
        stats.received_datagrams,
        stats.decode_errors,
        stats.timers_fired,
    );
    // Sanity: the datagram count must cover the payload we claim to have
    // moved (each full segment carries MSS_PAYLOAD bytes).
    if completed && stats.sent_datagrams * MSS_PAYLOAD < opts.bytes {
        failures.push(format!(
            "sent only {} datagrams for {} bytes",
            stats.sent_datagrams, opts.bytes
        ));
    }
    let violations = mpcc_check::violations();
    if violations > 0 {
        failures.push(format!("{violations} runtime invariant violations"));
    }
    if failures.is_empty() {
        println!("udp demo: OK");
        Ok(0)
    } else {
        for f in &failures {
            eprintln!("udp demo: FAIL: {f}");
        }
        Ok(1)
    }
}
