//! `experiments report` — the flight recorder.
//!
//! Turns a flushed metrics stream (the `--metrics` output of any run mode,
//! including `experiments check` and fault-soak runs) into a
//! human-readable Markdown report: per-subflow rate trajectories,
//! fairness over time, the MPCC decision breakdown, drop/RTO/fault
//! counters, and a check-violation summary.
//!
//! The parser is hand-rolled (flat JSONL and the packed CSV dialect the
//! [`mpcc_telemetry::MetricsPipeline`] writes — no serde anywhere in the
//! tree) and strict: an empty stream or any unparsable row is an error,
//! so CI can smoke-run a report and trust a zero exit code.

use mpcc_metrics::{jain_index, sparkline};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Glyph budget for inline trajectory sparklines.
const SPARK_WIDTH: usize = 48;

/// One parsed metrics row.
#[derive(Debug, Default)]
struct Row {
    t_ns: u64,
    run: u64,
    scope: String,
    nums: Vec<(String, f64)>,
    strs: Vec<(String, String)>,
}

impl Row {
    fn num(&self, k: &str) -> Option<f64> {
        self.nums.iter().find(|(n, _)| n == k).map(|&(_, v)| v)
    }

    fn count(&self, k: &str) -> u64 {
        self.num(k).unwrap_or(0.0) as u64
    }

    fn label(&self, k: &str) -> Option<&str> {
        self.strs
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one flat-JSONL row: `{"t_ns":N,"run":R,"scope":"…",…}` with
/// number or simple-string values (the pipeline never emits nesting or
/// escaped quotes).
fn parse_jsonl_row(line: &str) -> Result<Row, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("row is not a JSON object")?;
    let mut row = Row::default();
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after_key = &rest[open + 1..];
        let close = after_key.find('"').ok_or("unterminated key")?;
        let key = &after_key[..close];
        let after = after_key[close + 1..]
            .strip_prefix(':')
            .ok_or("missing ':' after key")?;
        if let Some(s) = after.strip_prefix('"') {
            let end = s.find('"').ok_or("unterminated string value")?;
            let val = &s[..end];
            if key == "scope" {
                row.scope = val.to_string();
            } else {
                row.strs.push((key.to_string(), val.to_string()));
            }
            rest = &s[end + 1..];
        } else {
            let end = after.find([',', '}']).unwrap_or(after.len());
            let val: f64 = after[..end]
                .parse()
                .map_err(|_| format!("bad number for {key:?}"))?;
            // `"NaN"`/`"inf"` parse as f64 but poison every downstream
            // aggregate (means, Jain index, sparkline minima), so a
            // non-finite value is a malformed stream, not data.
            if !val.is_finite() {
                return Err(format!("non-finite value for {key:?}"));
            }
            match key {
                "t_ns" => row.t_ns = val as u64,
                "run" => row.run = val as u64,
                _ => row.nums.push((key.to_string(), val)),
            }
            rest = &after[end..];
        }
    }
    if row.scope.is_empty() {
        return Err("row has no scope".into());
    }
    Ok(row)
}

/// Parses one packed-CSV row: `t_ns,run,scope,"k=v k=v …"`.
fn parse_csv_row(line: &str) -> Result<Row, String> {
    let mut parts = line.splitn(4, ',');
    let t_ns = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("bad t_ns column")?;
    let run = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or("bad run column")?;
    let scope = parts.next().ok_or("missing scope column")?.to_string();
    let packed = parts
        .next()
        .and_then(|f| f.strip_prefix('"'))
        .and_then(|f| f.strip_suffix('"'))
        .ok_or("fields column is not quoted")?;
    let mut row = Row {
        t_ns,
        run,
        scope,
        ..Row::default()
    };
    for kv in packed.split_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("bad field {kv:?}"))?;
        match v.parse::<f64>() {
            Ok(n) if n.is_finite() => row.nums.push((k.to_string(), n)),
            // Parses as a float but is NaN/±inf: reject rather than
            // letting it pass as a "string" and silently vanish, or as a
            // number and poison the aggregates.
            Ok(_) => return Err(format!("non-finite value for {k:?}")),
            Err(_) => row.strs.push((k.to_string(), v.to_string())),
        }
    }
    Ok(row)
}

/// Parses a whole metrics document (auto-detects CSV by its header line).
///
/// Beyond per-row syntax, the stream-level shape is validated: within one
/// run the bin timestamps must never go backwards. Every writer — the
/// single-run pipeline, batch appends, and the sharded keyed merge — emits
/// bins in time order per run (equal timestamps are normal, one per scope;
/// a restart at a new run id is normal for batch files), so a backwards
/// step means a corrupted or mis-merged stream and the aggregates built
/// from it would silently mix bins.
fn parse(doc: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    let mut lines = doc.lines().enumerate();
    let csv = doc.starts_with("t_ns,run,scope");
    if csv {
        lines.next();
    }
    let mut last_t: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let row = if csv {
            parse_csv_row(line)
        } else {
            parse_jsonl_row(line)
        };
        let row = row.map_err(|e| format!("line {}: {e}", i + 1))?;
        let last = last_t.entry(row.run).or_insert(0);
        if row.t_ns < *last {
            return Err(format!(
                "line {}: bin timestamp went backwards within run {} \
                 ({} ns after {} ns) — corrupted or mis-merged stream",
                i + 1,
                row.run,
                row.t_ns,
                *last,
            ));
        }
        *last = row.t_ns;
        rows.push(row);
    }
    Ok(rows)
}

/// Per-subflow aggregates across all bins of one run.
#[derive(Default)]
struct SubAgg {
    /// (bin end, goodput Mbps) trajectory.
    goodput: Vec<f64>,
    acked_bytes: u64,
    sends: u64,
    reinjections: u64,
    sack_losses: u64,
    rtos: u64,
    /// Per-bin RTT p50s (µs), for the run-level median of medians.
    rtt_p50s: Vec<f64>,
    rtt_p99_max: f64,
}

#[derive(Default)]
struct LinkAgg {
    enq_bytes: u64,
    drop_overflow: u64,
    drop_random: u64,
    drop_burst: u64,
    drop_outage: u64,
    reordered: u64,
    duplicated: u64,
    queue_bytes_max: u64,
}

/// Everything the report needs about one run of the stream.
#[derive(Default)]
struct RunAgg {
    span_ns: u64,
    bin_ns: u64,
    subflows: BTreeMap<(u64, u64), SubAgg>,
    /// bin end → (conn → goodput Mbps), for fairness-over-time.
    conn_goodput: BTreeMap<u64, BTreeMap<u64, f64>>,
    /// MPCC decision counters (mi_started, act_*, pick_*, …), summed.
    decisions: BTreeMap<String, u64>,
    mi_goodput_avgs: Vec<f64>,
    mi_loss_avgs: Vec<f64>,
    links: BTreeMap<u64, LinkAgg>,
    checks: BTreeMap<String, u64>,
}

fn aggregate(rows: &[Row]) -> BTreeMap<u64, RunAgg> {
    let mut runs: BTreeMap<u64, RunAgg> = BTreeMap::new();
    for row in rows {
        let agg = runs.entry(row.run).or_default();
        agg.span_ns = agg.span_ns.max(row.t_ns);
        if row.t_ns > 0 {
            agg.bin_ns = if agg.bin_ns == 0 {
                row.t_ns
            } else {
                agg.bin_ns.min(row.t_ns)
            };
        }
        match row.scope.as_str() {
            "subflow" => {
                let key = (row.count("conn"), row.count("subflow"));
                let goodput = row.num("goodput_mbps").unwrap_or(0.0);
                let sub = agg.subflows.entry(key).or_default();
                sub.goodput.push(goodput);
                sub.acked_bytes += row.count("acked_bytes");
                sub.sends += row.count("sends");
                sub.reinjections += row.count("reinjections");
                sub.sack_losses += row.count("sack_losses");
                sub.rtos += row.count("rtos");
                if let Some(p50) = row.num("rtt_p50_us") {
                    sub.rtt_p50s.push(p50);
                }
                if let Some(p99) = row.num("rtt_p99_us") {
                    sub.rtt_p99_max = sub.rtt_p99_max.max(p99);
                }
                *agg.conn_goodput
                    .entry(row.t_ns)
                    .or_default()
                    .entry(key.0)
                    .or_insert(0.0) += goodput;
            }
            "conn" => {
                for (k, v) in &row.nums {
                    match k.as_str() {
                        "conn" => {}
                        "mi_goodput_mbps_avg" => agg.mi_goodput_avgs.push(*v),
                        "mi_loss_rate_avg" => agg.mi_loss_avgs.push(*v),
                        _ => *agg.decisions.entry(k.clone()).or_insert(0) += *v as u64,
                    }
                }
            }
            "link" => {
                let link = agg.links.entry(row.count("link")).or_default();
                link.enq_bytes += row.count("enq_bytes");
                link.drop_overflow += row.count("drop_overflow");
                link.drop_random += row.count("drop_random");
                link.drop_burst += row.count("drop_burst");
                link.drop_outage += row.count("drop_outage");
                link.reordered += row.count("reordered");
                link.duplicated += row.count("duplicated");
                link.queue_bytes_max = link.queue_bytes_max.max(row.count("queue_bytes_max"));
            }
            "check" => {
                let name = row.label("invariant").unwrap_or("?").to_string();
                *agg.checks.entry(name).or_insert(0) += row.count("count");
            }
            _ => {}
        }
    }
    runs
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Renders the Markdown report for the metrics stream at `path`. Errors
/// (unreadable file, empty stream, malformed row) are returned as text so
/// the CLI can exit nonzero — `experiments report` must never print a
/// hollow report for a broken stream.
pub fn render(path: &Path) -> Result<String, String> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let rows = parse(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    if rows.is_empty() {
        return Err(format!("{}: empty metrics stream", path.display()));
    }
    let runs = aggregate(&rows);

    let mut out = String::new();
    let _ = writeln!(out, "# MPCC flight report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "- source: `{}` ({} rows, {} run{})",
        path.display(),
        rows.len(),
        runs.len(),
        if runs.len() == 1 { "" } else { "s" },
    );
    for (run, agg) in &runs {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "## Run {run} — {:.0} s span, {:.3} s bins",
            agg.span_ns as f64 / 1e9,
            agg.bin_ns.max(1) as f64 / 1e9,
        );

        let _ = writeln!(out);
        let _ = writeln!(out, "### Subflow rate trajectories (goodput, Mbps)");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| conn | subflow | bins | mean | min | max | trajectory |"
        );
        let _ = writeln!(
            out,
            "|-----:|--------:|-----:|-----:|----:|----:|:-----------|"
        );
        for (&(conn, subflow), sub) in &agg.subflows {
            let min = sub.goodput.iter().copied().fold(f64::INFINITY, f64::min);
            let max = sub.goodput.iter().copied().fold(0.0, f64::max);
            let _ = writeln!(
                out,
                "| {conn} | {subflow} | {} | {:.2} | {:.2} | {:.2} | `{}` |",
                sub.goodput.len(),
                mean(&sub.goodput),
                min,
                max,
                sparkline(&sub.goodput, SPARK_WIDTH),
            );
        }

        // Fairness over time: Jain's index over per-connection goodput,
        // one point per bin (only meaningful with 2+ connections).
        let jains: Vec<f64> = agg
            .conn_goodput
            .values()
            .filter(|per_conn| per_conn.len() > 1)
            .map(|per_conn| {
                let v: Vec<f64> = per_conn.values().copied().collect();
                jain_index(&v)
            })
            .collect();
        if !jains.is_empty() {
            let worst = jains.iter().copied().fold(f64::INFINITY, f64::min);
            let _ = writeln!(out);
            let _ = writeln!(out, "### Fairness over time (Jain index per bin)");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "mean {:.4}, worst bin {:.4}: `{}`",
                mean(&jains),
                worst,
                sparkline(&jains, SPARK_WIDTH),
            );
        }

        if !agg.decisions.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "### MPCC decisions");
            let _ = writeln!(out);
            let _ = writeln!(out, "| counter | total |");
            let _ = writeln!(out, "|:--------|------:|");
            for (k, v) in &agg.decisions {
                let _ = writeln!(out, "| {k} | {v} |");
            }
            if !agg.mi_goodput_avgs.is_empty() {
                let _ = writeln!(
                    out,
                    "\nMI-measured goodput avg {:.2} Mbps, loss rate avg {:.4}",
                    mean(&agg.mi_goodput_avgs),
                    mean(&agg.mi_loss_avgs),
                );
            }
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "### Losses, recovery and faults");
        let _ = writeln!(out);
        let (mut sack, mut rtos, mut reinj) = (0, 0, 0);
        for sub in agg.subflows.values() {
            sack += sub.sack_losses;
            rtos += sub.rtos;
            reinj += sub.reinjections;
        }
        let _ = writeln!(
            out,
            "subflow totals: {sack} SACK losses, {rtos} RTOs, {reinj} reinjections"
        );
        if !agg.links.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "| link | MB thru | overflow | random | burst | outage | reorder | dup | max queue B |"
            );
            let _ = writeln!(
                out,
                "|-----:|--------:|---------:|-------:|------:|-------:|--------:|----:|------------:|"
            );
            for (link, l) in &agg.links {
                let _ = writeln!(
                    out,
                    "| {link} | {:.1} | {} | {} | {} | {} | {} | {} | {} |",
                    l.enq_bytes as f64 / 1e6,
                    l.drop_overflow,
                    l.drop_random,
                    l.drop_burst,
                    l.drop_outage,
                    l.reordered,
                    l.duplicated,
                    l.queue_bytes_max,
                );
            }
        }

        // RTT summary per subflow (median of per-bin p50s, worst p99).
        let any_rtt = agg.subflows.values().any(|s| !s.rtt_p50s.is_empty());
        if any_rtt {
            let _ = writeln!(out);
            let _ = writeln!(out, "### RTT (µs)");
            let _ = writeln!(out);
            let _ = writeln!(out, "| conn | subflow | median bin p50 | worst bin p99 |");
            let _ = writeln!(out, "|-----:|--------:|---------------:|--------------:|");
            for (&(conn, subflow), sub) in &agg.subflows {
                if sub.rtt_p50s.is_empty() {
                    continue;
                }
                let mut p50s = sub.rtt_p50s.clone();
                // The parser rejects non-finite values, but keep the sort
                // total anyway: a report renderer must never panic.
                p50s.sort_by(f64::total_cmp);
                let _ = writeln!(
                    out,
                    "| {conn} | {subflow} | {:.0} | {:.0} |",
                    p50s[p50s.len() / 2],
                    sub.rtt_p99_max,
                );
            }
        }

        let _ = writeln!(out);
        let _ = writeln!(out, "### Check violations");
        let _ = writeln!(out);
        if agg.checks.is_empty() {
            let _ = writeln!(out, "none");
        } else {
            let _ = writeln!(out, "| invariant | count |");
            let _ = writeln!(out, "|:----------|------:|");
            for (k, v) in &agg.checks {
                let _ = writeln!(out, "| {k} | {v} |");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rows_parse() {
        let row = parse_jsonl_row(
            "{\"t_ns\":1000000000,\"run\":3,\"scope\":\"subflow\",\"conn\":1,\
             \"subflow\":0,\"acks\":2,\"goodput_mbps\":0.024}",
        )
        .unwrap();
        assert_eq!(row.t_ns, 1_000_000_000);
        assert_eq!(row.run, 3);
        assert_eq!(row.scope, "subflow");
        assert_eq!(row.count("acks"), 2);
        assert_eq!(row.num("goodput_mbps"), Some(0.024));
        let check = parse_jsonl_row(
            "{\"t_ns\":5,\"run\":0,\"scope\":\"check\",\"invariant\":\"x\",\"count\":2}",
        )
        .unwrap();
        assert_eq!(check.label("invariant"), Some("x"));
        assert!(parse_jsonl_row("not json").is_err());
        assert!(parse_jsonl_row("{\"t_ns\":oops,\"scope\":\"x\"}").is_err());
    }

    #[test]
    fn csv_rows_parse() {
        let row = parse_csv_row("1000000000,0,subflow,\"conn=1 subflow=0 acks=3\"").unwrap();
        assert_eq!(row.scope, "subflow");
        assert_eq!(row.count("acks"), 3);
        let check = parse_csv_row("5,0,check,\"invariant=demo count=1\"").unwrap();
        assert_eq!(check.label("invariant"), Some("demo"));
        assert!(parse_csv_row("x,y,z").is_err());
    }

    #[test]
    fn non_finite_values_are_malformed_not_data() {
        // A NaN/inf goodput would otherwise poison the Jain index, the
        // per-subflow mean, and the sparkline minimum for the whole run.
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            let line = format!(
                "{{\"t_ns\":1000000000,\"run\":0,\"scope\":\"subflow\",\
                 \"conn\":0,\"subflow\":0,\"goodput_mbps\":{bad}}}"
            );
            let err = parse_jsonl_row(&line).unwrap_err();
            assert!(err.contains("non-finite"), "{bad}: {err}");

            let csv = format!("1000000000,0,subflow,\"conn=0 subflow=0 goodput_mbps={bad}\"");
            let err = parse_csv_row(&csv).unwrap_err();
            assert!(err.contains("non-finite"), "{bad}: {err}");
        }
        // And the whole-document path reports it as a malformed stream.
        let doc = "{\"t_ns\":1000000000,\"run\":0,\"scope\":\"subflow\",\
                   \"conn\":0,\"subflow\":0,\"goodput_mbps\":NaN}\n";
        let err = parse(doc).unwrap_err();
        assert!(
            err.contains("line 1") && err.contains("non-finite"),
            "{err}"
        );
    }

    #[test]
    fn backwards_bin_timestamps_are_rejected_per_run() {
        // Equal timestamps (several scopes per bin) and a fresh run
        // restarting at an earlier time are both legal shapes.
        let ok = "\
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"goodput_mbps\":1.0}
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"link\",\"link\":0,\"enq_bytes\":1}
{\"t_ns\":2000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"goodput_mbps\":1.0}
{\"t_ns\":1000000000,\"run\":1,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"goodput_mbps\":1.0}
";
        assert_eq!(parse(ok).unwrap().len(), 4);

        // A backwards step within one run is a corrupted stream.
        let bad = "\
{\"t_ns\":2000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"goodput_mbps\":1.0}
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"goodput_mbps\":1.0}
";
        let err = parse(bad).unwrap_err();
        assert!(err.contains("line 2") && err.contains("backwards"), "{err}");
    }

    #[test]
    fn report_renders_and_rejects_bad_input() {
        let dir = std::env::temp_dir().join(format!("mpcc-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Two conns over two bins, one link, one violation.
        let doc = "\
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"acked_bytes\":125000,\"goodput_mbps\":1.0,\"sack_losses\":1,\"rtos\":0,\"rtt_count\":4,\"rtt_p50_us\":20000.0,\"rtt_p99_us\":30000.0}
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":1,\"subflow\":0,\"acked_bytes\":375000,\"goodput_mbps\":3.0}
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"conn\",\"conn\":0,\"mi_started\":2,\"mi_completed\":1,\"act_decided\":1,\"mi_goodput_mbps_avg\":1.5,\"mi_loss_rate_avg\":0.01}
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"link\",\"link\":0,\"enq_bytes\":500000,\"drop_overflow\":2,\"queue_bytes_max\":9000}
{\"t_ns\":1000000000,\"run\":0,\"scope\":\"check\",\"invariant\":\"demo\",\"count\":2}
{\"t_ns\":2000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":0,\"subflow\":0,\"goodput_mbps\":2.0}
{\"t_ns\":2000000000,\"run\":0,\"scope\":\"subflow\",\"conn\":1,\"subflow\":0,\"goodput_mbps\":2.0}
";
        let path = dir.join("metrics.jsonl");
        std::fs::write(&path, doc).unwrap();
        let md = render(&path).unwrap();
        assert!(md.contains("# MPCC flight report"), "{md}");
        assert!(md.contains("## Run 0 — 2 s span, 1.000 s bins"), "{md}");
        assert!(md.contains("| 0 | 0 | 2 | 1.50 | 1.00 | 2.00 |"), "{md}");
        assert!(md.contains("Fairness over time"), "{md}");
        // Bin 1 is 1.0 vs 3.0 (jain 0.8), bin 2 perfectly fair.
        assert!(md.contains("worst bin 0.8000"), "{md}");
        assert!(md.contains("| act_decided | 1 |"), "{md}");
        assert!(md.contains("1 SACK losses"), "{md}");
        assert!(md.contains("| demo | 2 |"), "{md}");
        assert!(md.contains("| 0 | 0 | 20000 | 30000 |"), "{md}");

        // CSV round-trips through the same aggregator.
        let csv =
            "t_ns,run,scope,fields\n1000000000,0,subflow,\"conn=0 subflow=0 goodput_mbps=1.5\"\n";
        let cpath = dir.join("metrics.csv");
        std::fs::write(&cpath, csv).unwrap();
        assert!(render(&cpath).unwrap().contains("| 0 | 0 | 1 | 1.50 |"));

        // Empty and malformed streams are errors, not hollow reports.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(render(&empty).unwrap_err().contains("empty"));
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"t_ns\":1}\ngarbage\n").unwrap();
        assert!(render(&bad).is_err());
        assert!(render(&dir.join("missing.jsonl")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
