//! Experiment output: aligned tables on stdout plus CSV files under
//! `results/`, so EXPERIMENTS.md can reference reproducible numbers.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A reproduced table/figure: a titled grid of values.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Experiment id, e.g. "fig5a".
    pub id: String,
    /// Human-readable title (what the paper's caption says).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling, substitutions).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints the table and writes `<dir>/<id>.csv` and `<dir>/<id>.json`.
    pub fn emit(&self, dir: &Path) {
        print!("{}", self.render());
        println!();
        if let Err(e) = self.write_files(dir) {
            eprintln!("warning: could not write results for {}: {e}", self.id);
        }
    }

    fn write_files(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut csv = fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        writeln!(csv, "{}", self.columns.join(","))?;
        for row in &self.rows {
            writeln!(csv, "{}", row.join(","))?;
        }
        let mut json = fs::File::create(dir.join(format!("{}.json", self.id)))?;
        json.write_all(self.to_json().as_bytes())?;
        Ok(())
    }

    /// Serializes the figure as pretty-printed JSON (hand-rolled: the
    /// workspace builds offline, without serde).
    fn to_json(&self) -> String {
        let str_array = |items: &[String], indent: &str| -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let body: Vec<String> = items
                .iter()
                .map(|s| format!("{indent}  {}", json_string(s)))
                .collect();
            format!("[\n{}\n{indent}]", body.join(",\n"))
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!(
            "  \"columns\": {},\n",
            str_array(&self.columns, "  ")
        ));
        if self.rows.is_empty() {
            out.push_str("  \"rows\": [],\n");
        } else {
            let rows: Vec<String> = self
                .rows
                .iter()
                .map(|r| format!("    {}", str_array(r, "    ")))
                .collect();
            out.push_str(&format!("  \"rows\": [\n{}\n  ],\n", rows.join(",\n")));
        }
        out.push_str(&format!("  \"notes\": {}\n", str_array(&self.notes, "  ")));
        out.push_str("}\n");
        out
    }
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut fig = Figure::new("figX", "test", &["proto", "goodput"]);
        fig.row(vec!["mpcc-latency".into(), "93.10".into()]);
        fig.row(vec!["lia".into(), "7.00".into()]);
        let text = fig.render();
        assert!(text.contains("figX"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and both rows end aligned on the goodput column.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn emit_writes_csv_and_json() {
        let dir = std::env::temp_dir().join("mpcc_test_output");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fig = Figure::new("figY", "t", &["a", "b"]);
        fig.row(vec!["1".into(), "2".into()]);
        fig.note("scaled");
        fig.write_files(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("figY.csv")).unwrap();
        assert_eq!(csv, "a,b\n1,2\n");
        let json = std::fs::read_to_string(dir.join("figY.json")).unwrap();
        assert!(json.contains("\"figY\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
