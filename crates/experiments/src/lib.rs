//! # mpcc-experiments
//!
//! Reproduction harness for every table and figure in the MPCC paper's
//! evaluation (§7). Each scenario module rebuilds one experiment on the
//! packet-level simulator and prints the series the paper plots; the
//! `experiments` binary dispatches on the figure id.
//!
//! Default scale is reduced (shorter runs, fewer repetitions, coarser
//! sweeps) to finish on a laptop-class machine; `--full` restores the
//! paper's durations and the complete Table 1 grid. All scaling choices
//! are noted on the emitted figures and in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod output;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod udp_demo;

use runner::Executor;
use std::path::PathBuf;

/// Global experiment options.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Paper-scale durations and full sweeps.
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Repetitions per data point.
    pub runs: u64,
    /// Output directory for CSV/JSON results.
    pub out_dir: PathBuf,
    /// Worker pool every scenario module submits its runs through
    /// (single-threaded and untraced by default; `--jobs`/`--trace`
    /// configure it in the binary).
    pub exec: Executor,
    /// Intra-run shard count (`--shards N`) for scenarios that support
    /// the partitioned engine (`churn`, `fig19`). For scenarios with a
    /// legacy single-instance path (`fig19`), 1 keeps that exact path so
    /// committed goldens stay byte-identical; `churn` always runs on the
    /// sharded engine, where every shard count produces identical
    /// results.
    pub shards: u8,
    /// `fig19 --full-scale`: the full-size 25 Gbps fabric and the paper's
    /// flow classes instead of the ~20x-scaled-down defaults.
    pub full_scale: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            full: false,
            seed: 20201201, // CoNEXT '20 opening day
            runs: 1,
            out_dir: PathBuf::from("results"),
            exec: Executor::serial(),
            shards: 1,
            full_scale: false,
        }
    }
}

impl ExpConfig {
    /// Picks the reduced or paper-scale variant of a knob.
    pub fn scale<T>(&self, reduced: T, paper: T) -> T {
        if self.full {
            paper
        } else {
            reduced
        }
    }

    /// Repetitions per point (bounded by the paper's 5).
    pub fn runs(&self) -> u64 {
        if self.full {
            self.runs.max(5)
        } else {
            self.runs
        }
    }
}
