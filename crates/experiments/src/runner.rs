//! The generic scenario runner: builds a parallel-link simulation from a
//! declarative description, runs it with periodic sampling, and returns
//! per-connection/per-subflow results.

use crate::protocols;
use mpcc_metrics::{RateSeries, Summary};
use mpcc_netsim::link::{LinkParams, LinkStats};
use mpcc_netsim::topology::parallel_links;
use mpcc_netsim::EndpointId;
use mpcc_simcore::{rng::splitmix64, SimDuration, SimTime};
use mpcc_telemetry::Tracer;
use mpcc_transport::{MpReceiver, MpSender, SenderConfig, Workload};
use std::sync::OnceLock;

/// The process-wide tracer installed by the binary's `--trace` flag.
/// `Tracer::off()` (the default when nothing is installed) makes every
/// emission a no-op, so untraced runs pay nothing.
static TRACER: OnceLock<Tracer> = OnceLock::new();

/// Installs the process-wide tracer attached to every scenario run.
/// Call at most once, before any [`run`]; later calls are ignored.
pub fn install_tracer(tracer: Tracer) {
    let _ = TRACER.set(tracer);
}

/// The installed tracer, or an off tracer when none was installed.
pub fn tracer() -> Tracer {
    TRACER.get().cloned().unwrap_or_default()
}

/// One connection of a scenario.
#[derive(Clone, Debug)]
pub struct ConnSpec {
    /// Protocol label (see [`protocols::make`]).
    pub proto: String,
    /// Link index (into the scenario's link list) of each subflow.
    pub links: Vec<usize>,
    /// Transfer size; `Bulk` for iperf-style runs.
    pub workload: Workload,
    /// Transmission start time.
    pub start: SimTime,
}

impl ConnSpec {
    /// A bulk connection starting at time zero.
    pub fn bulk(proto: &str, links: Vec<usize>) -> Self {
        ConnSpec {
            proto: proto.to_string(),
            links,
            workload: Workload::Bulk,
            start: SimTime::ZERO,
        }
    }
}

/// A declarative parallel-link experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Experiment seed (drives loss draws, MI jitter, probe ordering).
    pub seed: u64,
    /// The parallel bottleneck links.
    pub links: Vec<LinkParams>,
    /// The competing connections.
    pub conns: Vec<ConnSpec>,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Statistics before this offset are discarded (the paper drops the
    /// first 30 s of its 200 s runs).
    pub warmup: SimDuration,
    /// Sampling interval for the time series.
    pub sample_every: SimDuration,
    /// Scheduled link parameter changes (§7.2.3): (time, link, params).
    pub link_changes: Vec<(SimTime, usize, LinkParams)>,
}

impl Scenario {
    /// A scenario over `links` with the usual defaults (60 s run, 10 s
    /// warmup, 1 s samples).
    pub fn new(seed: u64, links: Vec<LinkParams>, conns: Vec<ConnSpec>) -> Self {
        Scenario {
            seed,
            links,
            conns,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(10),
            sample_every: SimDuration::from_secs(1),
            link_changes: Vec::new(),
        }
    }

    /// Scales run length and warmup (×5 for `--full` paper-scale runs).
    pub fn with_duration(mut self, duration: SimDuration, warmup: SimDuration) -> Self {
        self.duration = duration;
        self.warmup = warmup;
        self
    }

    /// Sets the sampling interval.
    pub fn with_sampling(mut self, every: SimDuration) -> Self {
        self.sample_every = every;
        self
    }
}

/// Per-connection outcome of a run.
#[derive(Clone, Debug)]
pub struct ConnResult {
    /// Protocol label.
    pub proto: String,
    /// Mean goodput after warmup, Mbps (connection-level in-order bytes).
    pub goodput_mbps: f64,
    /// Goodput time series.
    pub series: RateSeries,
    /// Per-subflow delivered-byte rate series.
    pub subflow_series: Vec<RateSeries>,
    /// Smoothed-RTT samples per subflow, (time, ms).
    pub srtt_ms: Vec<Vec<(SimTime, f64)>>,
    /// Flow completion time (finite workloads), seconds.
    pub fct: Option<f64>,
    /// Total packets lost across subflows.
    pub lost_packets: u64,
    /// Total packets sent across subflows.
    pub sent_packets: u64,
}

/// Outcome of a scenario run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// One entry per connection, in `Scenario::conns` order.
    pub conns: Vec<ConnResult>,
    /// Final per-link counters.
    pub links: Vec<LinkStats>,
    /// Mean aggregate goodput after warmup, Mbps.
    pub total_goodput_mbps: f64,
}

impl RunResult {
    /// Jain fairness index over the connections' mean goodputs.
    pub fn jain(&self) -> f64 {
        let v: Vec<f64> = self.conns.iter().map(|c| c.goodput_mbps).collect();
        mpcc_metrics::jain_index(&v)
    }

    /// Aggregate goodput divided by total link capacity (`capacities` in
    /// Mbps) — the paper's Fig. 10b normalization.
    pub fn utilization(&self, capacities_mbps: f64) -> f64 {
        if capacities_mbps <= 0.0 {
            return 0.0;
        }
        self.total_goodput_mbps / capacities_mbps
    }
}

/// Runs a scenario to completion.
pub fn run(sc: &Scenario) -> RunResult {
    let mut net = parallel_links(sc.seed, &sc.links);
    // Paths: one per (connection, subflow); paths over the same link are
    // distinct PathIds but share the Link object.
    let mut sim_paths: Vec<Vec<_>> = Vec::new();
    for conn in &sc.conns {
        let paths = conn.links.iter().map(|&l| net.path(l)).collect();
        sim_paths.push(paths);
    }
    let mut sim = net.sim;
    sim.set_tracer(tracer());
    for (t, link, params) in &sc.link_changes {
        sim.schedule_link_change(*t, net.links[*link], *params);
    }

    let mut senders: Vec<EndpointId> = Vec::new();
    for (i, conn) in sc.conns.iter().enumerate() {
        let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
        let cc = protocols::make(
            &conn.proto,
            splitmix64(sc.seed ^ splitmix64(0xC0FFEE + i as u64)),
        );
        let cfg = SenderConfig {
            dst: recv,
            paths: sim_paths[i].clone(),
            workload: conn.workload,
            scheduler: protocols::scheduler_for(&conn.proto),
            start_at: conn.start,
            peer_buffer: 300_000_000,
        };
        senders.push(sim.add_endpoint(Box::new(MpSender::new(cfg, cc))));
    }

    // Sampling loop.
    let n = sc.conns.len();
    let mut series: Vec<RateSeries> = (0..n).map(|_| RateSeries::new()).collect();
    let mut sf_series: Vec<Vec<RateSeries>> = sc
        .conns
        .iter()
        .map(|c| (0..c.links.len()).map(|_| RateSeries::new()).collect())
        .collect();
    let mut srtt: Vec<Vec<Vec<(SimTime, f64)>>> = sc
        .conns
        .iter()
        .map(|c| vec![Vec::new(); c.links.len()])
        .collect();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + sc.duration;
    while t < end {
        t += sc.sample_every;
        sim.run_until(t.min(end));
        for (i, &id) in senders.iter().enumerate() {
            let sender = sim.endpoint::<MpSender>(id);
            series[i].push_cumulative(t, sender.data_acked());
            for k in 0..sc.conns[i].links.len() {
                if k < sender.num_subflows() {
                    let stats = sender.subflow_stats(k);
                    sf_series[i][k].push_cumulative(t, stats.delivered_bytes);
                    srtt[i][k].push((t, stats.srtt.as_millis_f64()));
                }
            }
        }
    }

    let warm = SimTime::ZERO + sc.warmup;
    let mut conns = Vec::with_capacity(n);
    for (i, spec) in sc.conns.iter().enumerate() {
        let sender = sim.endpoint::<MpSender>(senders[i]);
        let (mut lost, mut sent) = (0, 0);
        let active_sfs = sender.num_subflows();
        for k in 0..active_sfs {
            let s = sender.subflow_stats(k);
            lost += s.lost_packets;
            sent += s.sent_packets;
        }
        conns.push(ConnResult {
            proto: spec.proto.clone(),
            goodput_mbps: series[i].mean_after(warm),
            series: series[i].clone(),
            subflow_series: sf_series[i].clone(),
            srtt_ms: srtt[i].clone(),
            fct: sender.fct().map(|d| d.as_secs_f64()),
            lost_packets: lost,
            sent_packets: sent,
        });
    }
    let total = conns.iter().map(|c| c.goodput_mbps).sum();
    let links = net.links.iter().map(|&l| sim.link_stats(l)).collect();
    tracer().flush();
    RunResult {
        conns,
        links,
        total_goodput_mbps: total,
    }
}

/// Runs `runs` seeds of the same scenario and returns the per-connection
/// goodput summaries (index = connection).
pub fn run_seeds(sc: &Scenario, runs: u64) -> Vec<Summary> {
    let mut per_conn: Vec<Vec<f64>> = vec![Vec::new(); sc.conns.len()];
    for r in 0..runs {
        let mut sc_r = sc.clone();
        sc_r.seed = splitmix64(sc.seed ^ splitmix64(r + 1));
        let result = run(&sc_r);
        for (i, c) in result.conns.iter().enumerate() {
            per_conn[i].push(c.goodput_mbps);
        }
    }
    per_conn.iter().map(|v| Summary::of(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_fills_default_link() {
        let sc = Scenario::new(
            1,
            vec![LinkParams::paper_default()],
            vec![ConnSpec::bulk("reno", vec![0])],
        )
        .with_duration(SimDuration::from_secs(20), SimDuration::from_secs(5));
        let result = run(&sc);
        assert!(
            result.conns[0].goodput_mbps > 80.0,
            "{}",
            result.conns[0].goodput_mbps
        );
        assert!(result.jain() > 0.999);
        assert!(result.utilization(100.0) > 0.8);
    }

    #[test]
    fn two_reno_flows_share_fairly() {
        let sc = Scenario::new(
            2,
            vec![LinkParams::paper_default()],
            vec![
                ConnSpec::bulk("reno", vec![0]),
                ConnSpec::bulk("reno", vec![0]),
            ],
        )
        .with_duration(SimDuration::from_secs(40), SimDuration::from_secs(10));
        let result = run(&sc);
        assert!(result.jain() > 0.85, "jain {}", result.jain());
        assert!(result.total_goodput_mbps > 80.0);
    }

    #[test]
    fn finite_workload_reports_fct() {
        let sc = Scenario::new(
            3,
            vec![LinkParams::paper_default()],
            vec![ConnSpec {
                proto: "reno".into(),
                links: vec![0],
                workload: Workload::Finite(5_000_000),
                start: SimTime::ZERO,
            }],
        )
        .with_duration(SimDuration::from_secs(20), SimDuration::ZERO);
        let result = run(&sc);
        let fct = result.conns[0].fct.expect("flow completes");
        // 5 MB over ≤100 Mbps with slow start: between 0.4 and 5 s.
        assert!((0.4..5.0).contains(&fct), "fct {fct}");
    }

    #[test]
    fn link_change_takes_effect() {
        let mut sc = Scenario::new(
            4,
            vec![LinkParams::paper_default()],
            vec![ConnSpec::bulk("reno", vec![0])],
        )
        .with_duration(SimDuration::from_secs(30), SimDuration::from_secs(2));
        sc.link_changes.push((
            SimTime::from_secs(10),
            0,
            LinkParams::paper_default().with_capacity(mpcc_simcore::Rate::from_mbps(10.0)),
        ));
        let result = run(&sc);
        let early = result.conns[0].series.mean_after(SimTime::from_secs(2))
            - result.conns[0].series.mean_after(SimTime::from_secs(12));
        // Goodput after the cut must be far below the early value.
        let late = result.conns[0].series.mean_after(SimTime::from_secs(12));
        assert!(late < 15.0, "late {late}");
        assert!(early > 0.0);
    }
}
