//! The generic scenario runner: builds a parallel-link simulation from a
//! declarative description, runs it with periodic sampling, and returns
//! per-connection/per-subflow results.
//!
//! Runs are self-contained — each [`run`] owns its simulation and tracer
//! end-to-end — so independent (scenario, seed) jobs can be farmed out to
//! the [`Executor`] worker pool. Results always come back in submission
//! order, and traced runs write to per-run sink files that the executor
//! merges in run-id order, so `--jobs N` output is byte-identical to
//! `--jobs 1`.

use crate::protocols;
use mpcc_metrics::{RateSeries, Summary};
use mpcc_netsim::fault::FaultPlan;
use mpcc_netsim::link::{LinkParams, LinkStats};
use mpcc_netsim::topology::parallel_links;
use mpcc_netsim::{EndpointId, ShardedSimulation, Simulation};
use mpcc_simcore::{rng::splitmix64, DispatchStamp, SimDuration, SimTime};
use mpcc_telemetry::{
    merge_keyed_parts, CsvSink, JsonlSink, KeyedSink, LayerMask, MetricsPipeline, PipelineConfig,
    Record, TeeSink, TraceSink, Tracer,
};
use mpcc_transport::{MpReceiver, MpSender, ReceiverStats, SenderConfig, Workload};
use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::{fmt, fs};

/// Where traced runs write their records.
///
/// Each run gets its own sink file (`<stem>.run<NNNNN>.<ext>`) so
/// concurrent runs never interleave records; once a batch completes the
/// [`Executor`] appends the per-run files to `path` in run-id order and
/// removes them. Run ids are assigned at submission, which makes the
/// merged trace independent of the worker count.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// The merged output file (`.csv` selects CSV, anything else JSONL).
    pub path: PathBuf,
    /// Layers to record.
    pub mask: LayerMask,
}

impl TraceConfig {
    /// Whether the destination's extension selects CSV rows.
    pub fn is_csv(&self) -> bool {
        self.path.extension().is_some_and(|e| e == "csv")
    }

    /// The per-run sink file for `run_id`.
    pub fn run_path(&self, run_id: u64) -> PathBuf {
        let stem = self
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace");
        let ext = self
            .path
            .extension()
            .and_then(|s| s.to_str())
            .unwrap_or("jsonl");
        self.path
            .with_file_name(format!("{stem}.run{run_id:05}.{ext}"))
    }

    /// The per-shard keyed part file of a directly-built sharded run
    /// (see [`ShardTelemetry`]).
    pub fn shard_path(&self, tag: &str, shard: usize) -> PathBuf {
        let stem = self
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace");
        let ext = self
            .path
            .extension()
            .and_then(|s| s.to_str())
            .unwrap_or("jsonl");
        self.path
            .with_file_name(format!("{stem}.{tag}.shard{shard:02}.{ext}"))
    }

    fn make_sink(&self, run_id: u64) -> io::Result<Arc<dyn TraceSink>> {
        let path = self.run_path(run_id);
        Ok(if self.is_csv() {
            Arc::new(CsvSink::create(&path)?)
        } else {
            Arc::new(JsonlSink::create(&path)?)
        })
    }
}

/// Where runs flush their time-binned metrics rows (see
/// [`mpcc_telemetry::MetricsPipeline`]).
///
/// The per-run part-file and merge discipline is identical to
/// [`TraceConfig`]: every run folds its own trace stream into its own
/// `<stem>.run<NNNNN>.<ext>` file, and the [`Executor`] concatenates them
/// into `path` in run-id order, so the merged series are byte-identical
/// at any `--jobs` count.
#[derive(Clone, Debug)]
pub struct MetricsConfig {
    /// The merged output file (`.csv` selects CSV, anything else JSONL).
    pub path: PathBuf,
    /// Time-bin width of the aggregated series.
    pub bin: SimDuration,
    /// Row-ring capacity of each run's pipeline (rows buffered between
    /// drains to the part file).
    pub ring_lines: usize,
}

impl MetricsConfig {
    /// A config at the default cadence (1 s bins, 256-row ring).
    pub fn new(path: PathBuf) -> Self {
        let d = PipelineConfig::default();
        MetricsConfig {
            path,
            bin: d.bin,
            ring_lines: d.ring_lines,
        }
    }

    /// Sets the bin width.
    pub fn with_bin(mut self, bin: SimDuration) -> Self {
        self.bin = bin;
        self
    }

    /// Whether the destination's extension selects CSV rows.
    pub fn is_csv(&self) -> bool {
        self.path.extension().is_some_and(|e| e == "csv")
    }

    /// The per-run part file for `run_id`.
    pub fn run_path(&self, run_id: u64) -> PathBuf {
        let stem = self
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("metrics");
        let ext = self
            .path
            .extension()
            .and_then(|s| s.to_str())
            .unwrap_or("jsonl");
        self.path
            .with_file_name(format!("{stem}.run{run_id:05}.{ext}"))
    }

    /// The per-shard keyed part file of a directly-built sharded run
    /// (see [`ShardTelemetry`]).
    pub fn shard_path(&self, tag: &str, shard: usize) -> PathBuf {
        let stem = self
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("metrics");
        let ext = self
            .path
            .extension()
            .and_then(|s| s.to_str())
            .unwrap_or("jsonl");
        self.path
            .with_file_name(format!("{stem}.{tag}.shard{shard:02}.{ext}"))
    }

    fn make_pipeline(&self, run_id: u64) -> io::Result<Arc<MetricsPipeline>> {
        let cfg = PipelineConfig::default()
            .with_bin(self.bin)
            .with_ring(self.ring_lines)
            .with_run(run_id);
        Ok(Arc::new(MetricsPipeline::create(
            cfg,
            &self.run_path(run_id),
        )?))
    }
}

struct ExecInner {
    jobs: usize,
    trace: Option<TraceConfig>,
    metrics: Option<MetricsConfig>,
    /// Fault plan overlaid on every link of every submitted scenario
    /// (the CLI's global `--faults` spec).
    faults: Option<FaultPlan>,
    /// Monotonic run-id counter, shared by every clone of the executor so
    /// per-run trace files never collide across batches.
    next_run_id: AtomicU64,
}

/// A deterministic worker pool for experiment runs.
///
/// Jobs execute on up to `jobs` threads, but results are returned — and
/// traces merged — strictly in submission order, so any worker count
/// produces identical output. Cloning shares the pool configuration and
/// the run-id counter.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecInner>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("jobs", &self.inner.jobs)
            .field("trace", &self.inner.trace)
            .field("metrics", &self.inner.metrics)
            .field("faults", &self.inner.faults)
            .finish_non_exhaustive()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::serial()
    }
}

impl Executor {
    /// A single-threaded, untraced executor (the library default).
    pub fn serial() -> Self {
        Executor::new(1, None)
    }

    /// An executor running up to `jobs` scenarios concurrently. When
    /// `trace` is set, the merged trace file is created (truncated) here —
    /// CSV output gets its header row exactly once, up front; the per-run
    /// files merged in later have theirs stripped.
    pub fn new(jobs: usize, trace: Option<TraceConfig>) -> Self {
        if let Some(tc) = &trace {
            let mut f = fs::File::create(&tc.path)
                .unwrap_or_else(|e| panic!("cannot create trace file {:?}: {e}", tc.path));
            if tc.is_csv() {
                writeln!(f, "{}", Record::csv_header()).expect("cannot write trace header");
            }
        }
        Executor {
            inner: Arc::new(ExecInner {
                jobs: jobs.max(1),
                trace,
                metrics: None,
                faults: None,
                next_run_id: AtomicU64::new(0),
            }),
        }
    }

    /// Returns an executor that overlays `faults` on every link of every
    /// scenario it runs (including links swapped in by scheduled changes).
    /// Knobs the scenario already sets win only if the overlay leaves them
    /// unset — see [`FaultPlan::overlay`].
    pub fn with_faults(self, faults: FaultPlan) -> Self {
        let inner = &self.inner;
        Executor {
            inner: Arc::new(ExecInner {
                jobs: inner.jobs,
                trace: inner.trace.clone(),
                metrics: inner.metrics.clone(),
                faults: if faults.is_none() { None } else { Some(faults) },
                next_run_id: AtomicU64::new(inner.next_run_id.load(Ordering::Relaxed)),
            }),
        }
    }

    /// Returns an executor that additionally streams time-binned metrics
    /// from every run into `metrics.path`. The merged file is created
    /// (truncated) here; CSV output gets its header row exactly once, up
    /// front, like the trace file in [`Executor::new`].
    pub fn with_metrics(self, metrics: MetricsConfig) -> Self {
        let mut f = fs::File::create(&metrics.path)
            .unwrap_or_else(|e| panic!("cannot create metrics file {:?}: {e}", metrics.path));
        if metrics.is_csv() {
            writeln!(f, "{}", MetricsPipeline::CSV_HEADER).expect("cannot write metrics header");
        }
        let inner = &self.inner;
        Executor {
            inner: Arc::new(ExecInner {
                jobs: inner.jobs,
                trace: inner.trace.clone(),
                metrics: Some(metrics),
                faults: inner.faults,
                next_run_id: AtomicU64::new(inner.next_run_id.load(Ordering::Relaxed)),
            }),
        }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.inner.jobs
    }

    /// Maps `f` over `items` on up to [`Executor::jobs`] worker threads.
    /// Results come back in submission order regardless of completion
    /// order; a panicking job propagates once all workers have joined.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.inner.jobs.min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let queue: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<R>>> = std::iter::repeat_with(|| Mutex::new(None))
            .take(n)
            .collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let job = queue.lock().expect("job queue poisoned").pop_front();
                    match job {
                        Some((i, item)) => {
                            *slots[i].lock().expect("result slot poisoned") = Some(f(item));
                        }
                        None => break,
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Runs a batch of independent scenarios across the pool, returning
    /// results in submission order. With tracing configured, each run
    /// writes its own sink file and the batch's files are merged into the
    /// main trace file in run-id (= submission) order afterwards.
    pub fn run_batch(&self, scs: Vec<Scenario>) -> Vec<RunResult> {
        // Run ids are assigned before anything executes: the merge below
        // orders by id, never by completion.
        let jobs: Vec<Scenario> = scs
            .into_iter()
            .map(|mut sc| {
                let id = self.inner.next_run_id.fetch_add(1, Ordering::Relaxed);
                if let Some(tracer) = self
                    .make_run_tracer(id)
                    .unwrap_or_else(|e| panic!("cannot create per-run sink file: {e}"))
                {
                    sc.tracer = tracer;
                }
                if let Some(fp) = self.inner.faults {
                    for link in &mut sc.links {
                        link.faults = link.faults.overlay(fp);
                    }
                    for (_, _, params) in &mut sc.link_changes {
                        params.faults = params.faults.overlay(fp);
                    }
                }
                sc.run_id = id;
                sc
            })
            .collect();
        let ids: Vec<u64> = jobs.iter().map(|sc| sc.run_id).collect();
        let results = self.map(jobs, |sc| run(&sc));
        if let Some(tc) = &self.inner.trace {
            merge_parts(&tc.path, tc.is_csv(), &ids, |id| tc.run_path(id))
                .expect("cannot merge per-run trace files");
        }
        if let Some(mc) = &self.inner.metrics {
            merge_parts(&mc.path, mc.is_csv(), &ids, |id| mc.run_path(id))
                .expect("cannot merge per-run metrics files");
        }
        results
    }

    /// Builds the tracer a run with `run_id` should emit into, combining
    /// the trace and metrics configurations:
    ///
    /// * neither configured → `None` (the scenario keeps its own tracer);
    /// * trace only → the raw sink behind the trace mask (as before);
    /// * metrics only → the run's [`MetricsPipeline`] seeing every layer;
    /// * both → a [`TeeSink`] whose trace branch keeps the `--trace-filter`
    ///   mask while the metrics branch sees every layer, so attaching
    ///   metrics never changes the trace bytes.
    fn make_run_tracer(&self, run_id: u64) -> io::Result<Option<Tracer>> {
        let trace = &self.inner.trace;
        let metrics = &self.inner.metrics;
        Ok(match (trace, metrics) {
            (None, None) => None,
            (Some(tc), None) => Some(Tracer::new(tc.make_sink(run_id)?, tc.mask)),
            (None, Some(mc)) => Some(Tracer::new(mc.make_pipeline(run_id)?, LayerMask::ALL)),
            (Some(tc), Some(mc)) => {
                let tee = TeeSink::new(vec![
                    (tc.make_sink(run_id)?, tc.mask),
                    (
                        mc.make_pipeline(run_id)? as Arc<dyn TraceSink>,
                        LayerMask::ALL,
                    ),
                ]);
                Some(Tracer::new(Arc::new(tee), LayerMask::ALL))
            }
        })
    }

    /// Runs one scenario through the pool machinery (so it is traced and
    /// merged like any batch member).
    pub fn run_one(&self, sc: &Scenario) -> RunResult {
        self.run_batch(vec![sc.clone()]).pop().expect("one result")
    }

    /// The configured merged-trace destination, if any.
    pub fn trace_config(&self) -> Option<&TraceConfig> {
        self.inner.trace.as_ref()
    }

    /// The configured merged-metrics destination, if any.
    pub fn metrics_config(&self) -> Option<&MetricsConfig> {
        self.inner.metrics.as_ref()
    }

    /// Telemetry plumbing for a scenario that builds its own (sharded)
    /// simulation instead of going through [`Executor::run_batch`] —
    /// `None` when neither `--trace` nor `--metrics` is configured, so
    /// untraced runs pay nothing. `tag` names the part files (it must be
    /// unique within the process, e.g. the scenario or protocol name);
    /// the claimed run id keeps metrics rows distinguishable from other
    /// batches merged into the same file. Claim telemetry in a
    /// deterministic order (before farming jobs to [`Executor::map`]) so
    /// run ids are worker-count-independent, like batch submission ids.
    pub fn shard_telemetry(&self, tag: &str) -> Option<ShardTelemetry> {
        if self.inner.trace.is_none() && self.inner.metrics.is_none() {
            return None;
        }
        Some(ShardTelemetry {
            trace: self.inner.trace.clone(),
            metrics: self.inner.metrics.clone(),
            run_id: self.inner.next_run_id.fetch_add(1, Ordering::Relaxed),
            tag: tag.to_string(),
            trace_parts: Vec::new(),
            metrics_parts: Vec::new(),
        })
    }
}

/// Per-shard telemetry for directly-built scenarios (`churn`, the sharded
/// `fig19` paths): one keyed part stream per shard, merged afterwards into
/// the executor's `--trace`/`--metrics` files in canonical dispatch order,
/// so the merged bytes are identical at every `--shards` count and across
/// the sequential/threaded backends (DESIGN.md §13).
///
/// Lifecycle: [`Executor::shard_telemetry`] → [`ShardTelemetry::install`]
/// (or [`install_single`](ShardTelemetry::install_single) for a plain
/// one-instance simulation) → run → flush the simulation's tracers →
/// [`ShardTelemetry::merge`].
pub struct ShardTelemetry {
    trace: Option<TraceConfig>,
    metrics: Option<MetricsConfig>,
    run_id: u64,
    tag: String,
    trace_parts: Vec<PathBuf>,
    metrics_parts: Vec<PathBuf>,
}

impl ShardTelemetry {
    /// Builds one shard's tracer: the same four-way trace/metrics/tee
    /// combination as the executor's per-run tracer, but writing keyed
    /// part streams ordered by the shared dispatch stamp.
    fn make_shard_tracer(
        &mut self,
        shard: usize,
        stamp: &Arc<DispatchStamp>,
    ) -> io::Result<Tracer> {
        let trace_branch: Option<(Arc<dyn TraceSink>, LayerMask)> = match &self.trace {
            Some(tc) => {
                let path = tc.shard_path(&self.tag, shard);
                let sink = KeyedSink::create(&path, tc.is_csv(), Arc::clone(stamp))?;
                self.trace_parts.push(path);
                Some((Arc::new(sink), tc.mask))
            }
            None => None,
        };
        let metrics_branch: Option<(Arc<dyn TraceSink>, LayerMask)> = match &self.metrics {
            Some(mc) => {
                let path = mc.shard_path(&self.tag, shard);
                let cfg = PipelineConfig::default()
                    .with_bin(mc.bin)
                    .with_ring(mc.ring_lines)
                    .with_run(self.run_id)
                    .with_keyed(true);
                // Raw writer, not `MetricsPipeline::create`: part files are
                // headerless, the merged file owns the CSV header.
                let w: Box<dyn io::Write + Send> =
                    Box::new(io::BufWriter::new(fs::File::create(&path)?));
                let pipeline = MetricsPipeline::new(cfg, mc.is_csv(), w);
                self.metrics_parts.push(path);
                Some((Arc::new(pipeline), LayerMask::ALL))
            }
            None => None,
        };
        Ok(match (trace_branch, metrics_branch) {
            (Some((sink, mask)), None) => Tracer::new(sink, mask),
            (None, Some((sink, mask))) => Tracer::new(sink, mask),
            (Some(t), Some(m)) => Tracer::new(Arc::new(TeeSink::new(vec![t, m])), LayerMask::ALL),
            (None, None) => unreachable!("ShardTelemetry exists only with a sink configured"),
        })
    }

    /// Attaches one keyed part sink (and dispatch-stamp cell) per shard.
    /// Call before the first `run_until`.
    pub fn install(&mut self, sim: &mut ShardedSimulation) -> io::Result<()> {
        for i in 0..sim.shards() {
            let stamp = Arc::new(DispatchStamp::new());
            let tracer = self.make_shard_tracer(i, &stamp)?;
            sim.install_tracer(i, tracer, stamp);
        }
        Ok(())
    }

    /// Attaches a single part sink to a plain one-instance simulation (the
    /// legacy `fig19 --shards 1` path). The legacy event loop leaves the
    /// dispatch stamp untouched, so every record shares one key and the
    /// within-dispatch sequence number alone preserves emission order —
    /// a one-part merge then reproduces the plain sink bytes.
    pub fn install_single(&mut self, sim: &mut Simulation) -> io::Result<()> {
        let stamp = Arc::new(DispatchStamp::new());
        let tracer = self.make_shard_tracer(0, &stamp)?;
        sim.set_trace_stamp(stamp);
        sim.set_tracer(tracer);
        Ok(())
    }

    /// Merges the per-shard part files into the final `--trace`/`--metrics`
    /// files in canonical key order and removes them. Part files must be
    /// flushed first ([`ShardedSimulation::flush_tracers`]). Per-part row
    /// counts go to stderr so a truncated shard stream is visible instead
    /// of silently under-merging (report.rs cross-checks the totals).
    pub fn merge(self) -> io::Result<()> {
        if let Some(tc) = &self.trace {
            let header = tc.is_csv().then(Record::csv_header);
            let rows = merge_keyed_parts(&tc.path, &self.trace_parts, header)?;
            report_part_rows(&self.tag, "trace", &rows);
            for p in &self.trace_parts {
                fs::remove_file(p)?;
            }
        }
        if let Some(mc) = &self.metrics {
            let header = mc.is_csv().then_some(MetricsPipeline::CSV_HEADER);
            let rows = merge_keyed_parts(&mc.path, &self.metrics_parts, header)?;
            report_part_rows(&self.tag, "metrics", &rows);
            for p in &self.metrics_parts {
                fs::remove_file(p)?;
            }
        }
        Ok(())
    }
}

/// One stderr line per merged stream: the total and the per-part row
/// counts, in shard order.
fn report_part_rows(tag: &str, stream: &str, rows: &[u64]) {
    let total: u64 = rows.iter().sum();
    let parts: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
    eprintln!(
        "{tag}: merged {total} {stream} rows from {} part(s) [{}]",
        rows.len(),
        parts.join(" ")
    );
}

/// Appends each per-run part file to the merged file in run-id order and
/// removes it. Per-run CSV files carry their own header row, which is
/// skipped — the merged file got one when it was created. Shared by the
/// trace and metrics merges.
fn merge_parts(
    path: &PathBuf,
    is_csv: bool,
    ids: &[u64],
    part_path: impl Fn(u64) -> PathBuf,
) -> io::Result<()> {
    let mut out = io::BufWriter::new(fs::OpenOptions::new().append(true).open(path)?);
    for &id in ids {
        let part = part_path(id);
        let data = fs::read(&part)?;
        let body: &[u8] = if is_csv {
            match data.iter().position(|&b| b == b'\n') {
                Some(i) => &data[i + 1..],
                None => &[],
            }
        } else {
            &data
        };
        out.write_all(body)?;
        fs::remove_file(&part)?;
    }
    out.flush()
}

/// One connection of a scenario.
#[derive(Clone, Debug)]
pub struct ConnSpec {
    /// Protocol label (see [`protocols::make`]).
    pub proto: String,
    /// Link index (into the scenario's link list) of each subflow.
    pub links: Vec<usize>,
    /// Transfer size; `Bulk` for iperf-style runs.
    pub workload: Workload,
    /// Transmission start time.
    pub start: SimTime,
}

impl ConnSpec {
    /// A bulk connection starting at time zero.
    pub fn bulk(proto: &str, links: Vec<usize>) -> Self {
        ConnSpec {
            proto: proto.to_string(),
            links,
            workload: Workload::Bulk,
            start: SimTime::ZERO,
        }
    }
}

/// A declarative parallel-link experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Experiment seed (drives loss draws, MI jitter, probe ordering).
    pub seed: u64,
    /// The parallel bottleneck links.
    pub links: Vec<LinkParams>,
    /// The competing connections.
    pub conns: Vec<ConnSpec>,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Statistics before this offset are discarded (the paper drops the
    /// first 30 s of its 200 s runs).
    pub warmup: SimDuration,
    /// Sampling interval for the time series.
    pub sample_every: SimDuration,
    /// Scheduled link parameter changes (§7.2.3): (time, link, params).
    pub link_changes: Vec<(SimTime, usize, LinkParams)>,
    /// The tracer this run emits into (off by default; the [`Executor`]
    /// attaches a per-run sink when `--trace` is configured).
    pub tracer: Tracer,
    /// The executor-assigned run id (0 for standalone runs).
    pub run_id: u64,
}

impl Scenario {
    /// A scenario over `links` with the usual defaults (60 s run, 10 s
    /// warmup, 1 s samples, tracing off).
    pub fn new(seed: u64, links: Vec<LinkParams>, conns: Vec<ConnSpec>) -> Self {
        Scenario {
            seed,
            links,
            conns,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(10),
            sample_every: SimDuration::from_secs(1),
            link_changes: Vec::new(),
            tracer: Tracer::off(),
            run_id: 0,
        }
    }

    /// Scales run length and warmup (×5 for `--full` paper-scale runs).
    pub fn with_duration(mut self, duration: SimDuration, warmup: SimDuration) -> Self {
        self.duration = duration;
        self.warmup = warmup;
        self
    }

    /// Sets the sampling interval.
    pub fn with_sampling(mut self, every: SimDuration) -> Self {
        self.sample_every = every;
        self
    }

    /// Attaches a tracer for this run.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

/// Per-connection outcome of a run.
#[derive(Clone, Debug)]
pub struct ConnResult {
    /// Protocol label.
    pub proto: String,
    /// Mean goodput after warmup, Mbps (connection-level in-order bytes).
    pub goodput_mbps: f64,
    /// Goodput time series.
    pub series: RateSeries,
    /// Per-subflow delivered-byte rate series.
    pub subflow_series: Vec<RateSeries>,
    /// Smoothed-RTT samples per subflow, (time, ms).
    pub srtt_ms: Vec<Vec<(SimTime, f64)>>,
    /// Flow completion time (finite workloads), seconds.
    pub fct: Option<f64>,
    /// Total packets lost across subflows.
    pub lost_packets: u64,
    /// Total packets sent across subflows.
    pub sent_packets: u64,
    /// Connection-level bytes acknowledged at the sender.
    pub data_acked: u64,
    /// The receiver's final statistics (delivery frontier, duplicates).
    pub receiver: ReceiverStats,
}

/// Outcome of a scenario run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// One entry per connection, in `Scenario::conns` order.
    pub conns: Vec<ConnResult>,
    /// Final per-link counters.
    pub links: Vec<LinkStats>,
    /// Mean aggregate goodput after warmup, Mbps.
    pub total_goodput_mbps: f64,
}

impl RunResult {
    /// Jain fairness index over the connections' mean goodputs.
    pub fn jain(&self) -> f64 {
        let v: Vec<f64> = self.conns.iter().map(|c| c.goodput_mbps).collect();
        mpcc_metrics::jain_index(&v)
    }

    /// Aggregate goodput divided by total link capacity (`capacities` in
    /// Mbps) — the paper's Fig. 10b normalization.
    pub fn utilization(&self, capacities_mbps: f64) -> f64 {
        if capacities_mbps <= 0.0 {
            return 0.0;
        }
        self.total_goodput_mbps / capacities_mbps
    }
}

/// Runs a scenario to completion. The run is fully self-contained: it
/// owns its simulation and emits only into the scenario's own tracer, so
/// concurrent runs never share mutable state.
pub fn run(sc: &Scenario) -> RunResult {
    let mut net = parallel_links(sc.seed, &sc.links);
    // Paths: one per (connection, subflow); paths over the same link are
    // distinct PathIds but share the Link object.
    let mut sim_paths: Vec<Vec<_>> = Vec::new();
    for conn in &sc.conns {
        let paths = conn.links.iter().map(|&l| net.path(l)).collect();
        sim_paths.push(paths);
    }
    let mut sim = net.sim;
    sim.set_tracer(sc.tracer.clone());
    for (t, link, params) in &sc.link_changes {
        sim.schedule_link_change(*t, net.links[*link], *params);
    }

    let mut senders: Vec<EndpointId> = Vec::new();
    let mut receivers: Vec<EndpointId> = Vec::new();
    for (i, conn) in sc.conns.iter().enumerate() {
        let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
        receivers.push(recv);
        let cc = protocols::make(
            &conn.proto,
            splitmix64(sc.seed ^ splitmix64(0xC0FFEE + i as u64)),
        );
        let cfg = SenderConfig {
            dst: recv,
            paths: sim_paths[i].clone(),
            workload: conn.workload,
            scheduler: protocols::scheduler_for(&conn.proto),
            start_at: conn.start,
            peer_buffer: 300_000_000,
        };
        senders.push(sim.add_endpoint(Box::new(MpSender::new(cfg, cc))));
    }

    // Sampling loop.
    let n = sc.conns.len();
    let mut series: Vec<RateSeries> = (0..n).map(|_| RateSeries::new()).collect();
    let mut sf_series: Vec<Vec<RateSeries>> = sc
        .conns
        .iter()
        .map(|c| (0..c.links.len()).map(|_| RateSeries::new()).collect())
        .collect();
    let mut srtt: Vec<Vec<Vec<(SimTime, f64)>>> = sc
        .conns
        .iter()
        .map(|c| vec![Vec::new(); c.links.len()])
        .collect();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + sc.duration;
    while t < end {
        t += sc.sample_every;
        sim.run_until(t.min(end));
        for (i, &id) in senders.iter().enumerate() {
            let sender = sim.endpoint::<MpSender>(id);
            series[i].push_cumulative(t, sender.data_acked());
            for k in 0..sc.conns[i].links.len() {
                if k < sender.num_subflows() {
                    let stats = sender.subflow_stats(k, t);
                    sf_series[i][k].push_cumulative(t, stats.delivered_bytes);
                    srtt[i][k].push((t, stats.srtt.as_millis_f64()));
                }
            }
        }
    }

    let warm = SimTime::ZERO + sc.warmup;
    let mut conns = Vec::with_capacity(n);
    for (i, spec) in sc.conns.iter().enumerate() {
        let sender = sim.endpoint::<MpSender>(senders[i]);
        let (mut lost, mut sent) = (0, 0);
        let active_sfs = sender.num_subflows();
        for k in 0..active_sfs {
            let s = sender.subflow_stats(k, end);
            lost += s.lost_packets;
            sent += s.sent_packets;
        }
        let data_acked = sender.data_acked();
        let receiver = sim.endpoint::<MpReceiver>(receivers[i]).stats();
        let sender = sim.endpoint::<MpSender>(senders[i]);
        conns.push(ConnResult {
            proto: spec.proto.clone(),
            goodput_mbps: series[i].mean_after(warm),
            series: series[i].clone(),
            subflow_series: sf_series[i].clone(),
            srtt_ms: srtt[i].clone(),
            fct: sender.fct().map(|d| d.as_secs_f64()),
            lost_packets: lost,
            sent_packets: sent,
            data_acked,
            receiver,
        });
    }
    let total = conns.iter().map(|c| c.goodput_mbps).sum();
    let links = net.links.iter().map(|&l| sim.link_stats(l)).collect();
    sc.tracer.flush();
    RunResult {
        conns,
        links,
        total_goodput_mbps: total,
    }
}

/// Expands each scenario into `runs` independent seed-jobs (seeds derived
/// via `splitmix64`, identical to what serial repetition produced), runs
/// them all as one batch, and returns the per-connection goodput summaries
/// — one `Vec<Summary>` (index = connection) per input scenario.
pub fn run_seeds_batch(exec: &Executor, scs: &[Scenario], runs: u64) -> Vec<Vec<Summary>> {
    let mut jobs = Vec::with_capacity(scs.len() * runs as usize);
    for sc in scs {
        for r in 0..runs {
            let mut sc_r = sc.clone();
            sc_r.seed = splitmix64(sc.seed ^ splitmix64(r + 1));
            jobs.push(sc_r);
        }
    }
    let mut results = exec.run_batch(jobs).into_iter();
    scs.iter()
        .map(|sc| {
            let mut per_conn: Vec<Vec<f64>> = vec![Vec::new(); sc.conns.len()];
            for _ in 0..runs {
                let result = results.next().expect("one result per job");
                for (i, c) in result.conns.iter().enumerate() {
                    per_conn[i].push(c.goodput_mbps);
                }
            }
            per_conn.iter().map(|v| Summary::of(v)).collect()
        })
        .collect()
}

/// Runs `runs` seeds of the same scenario and returns the per-connection
/// goodput summaries (index = connection). See [`run_seeds_batch`].
pub fn run_seeds(exec: &Executor, sc: &Scenario, runs: u64) -> Vec<Summary> {
    run_seeds_batch(exec, std::slice::from_ref(sc), runs)
        .pop()
        .expect("one scenario in, one summary set out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcc_simcore::Rate;
    use std::path::Path;

    #[test]
    fn reno_fills_default_link() {
        let sc = Scenario::new(
            1,
            vec![LinkParams::paper_default()],
            vec![ConnSpec::bulk("reno", vec![0])],
        )
        .with_duration(SimDuration::from_secs(20), SimDuration::from_secs(5));
        let result = run(&sc);
        assert!(
            result.conns[0].goodput_mbps > 80.0,
            "{}",
            result.conns[0].goodput_mbps
        );
        assert!(result.jain() > 0.999);
        assert!(result.utilization(100.0) > 0.8);
    }

    #[test]
    fn two_reno_flows_share_fairly() {
        let sc = Scenario::new(
            2,
            vec![LinkParams::paper_default()],
            vec![
                ConnSpec::bulk("reno", vec![0]),
                ConnSpec::bulk("reno", vec![0]),
            ],
        )
        .with_duration(SimDuration::from_secs(40), SimDuration::from_secs(10));
        let result = run(&sc);
        assert!(result.jain() > 0.85, "jain {}", result.jain());
        assert!(result.total_goodput_mbps > 80.0);
    }

    #[test]
    fn finite_workload_reports_fct() {
        let sc = Scenario::new(
            3,
            vec![LinkParams::paper_default()],
            vec![ConnSpec {
                proto: "reno".into(),
                links: vec![0],
                workload: Workload::Finite(5_000_000),
                start: SimTime::ZERO,
            }],
        )
        .with_duration(SimDuration::from_secs(20), SimDuration::ZERO);
        let result = run(&sc);
        let fct = result.conns[0].fct.expect("flow completes");
        // 5 MB over ≤100 Mbps with slow start: between 0.4 and 5 s.
        assert!((0.4..5.0).contains(&fct), "fct {fct}");
    }

    #[test]
    fn link_change_takes_effect() {
        let mut sc = Scenario::new(
            4,
            vec![LinkParams::paper_default()],
            vec![ConnSpec::bulk("reno", vec![0])],
        )
        .with_duration(SimDuration::from_secs(30), SimDuration::from_secs(2));
        sc.link_changes.push((
            SimTime::from_secs(10),
            0,
            LinkParams::paper_default().with_capacity(Rate::from_mbps(10.0)),
        ));
        let result = run(&sc);
        let series = &result.conns[0].series;
        // Steady state on the 100 Mbps link before the 10 s capacity cut
        // vs steady state after it.
        let early = series.mean_between(SimTime::from_secs(2), SimTime::from_secs(10));
        let late = series.mean_after(SimTime::from_secs(12));
        assert!(early > 50.0, "early {early}");
        assert!(late < 15.0, "late {late}");
        assert!(early > 3.0 * late, "early {early} vs late {late}");
    }

    #[test]
    fn link_change_mid_outage_does_not_resurrect_packets() {
        use mpcc_netsim::fault::OutageSchedule;
        // A 5–10 s outage black-holes path 0; at 7 s a capacity change
        // lands on the same link (carrying the same fault plan, as the
        // executor overlay does). The change must not leak any packet out
        // of the black-hole window: goodput stays ~zero until the window
        // closes, and recovers afterwards.
        let faults = FaultPlan::NONE.with_outage(OutageSchedule::once(
            SimTime::from_secs(5),
            SimDuration::from_secs(5),
        ));
        let base = LinkParams::paper_default()
            .with_capacity(Rate::from_mbps(20.0))
            .with_faults(faults);
        let mut sc = Scenario::new(11, vec![base], vec![ConnSpec::bulk("reno", vec![0])])
            .with_duration(SimDuration::from_secs(25), SimDuration::from_secs(1));
        sc.link_changes.push((
            SimTime::from_secs(7),
            0,
            base.with_capacity(Rate::from_mbps(100.0))
                .with_faults(faults),
        ));
        let result = run(&sc);
        let series = &result.conns[0].series;
        let before = series.mean_between(SimTime::from_secs(1), SimTime::from_secs(5));
        let during = series.mean_between(SimTime::from_secs(6), SimTime::from_secs(10));
        let after = series.mean_after(SimTime::from_secs(14));
        assert!(before > 10.0, "before {before}");
        assert!(
            during < 1.0,
            "packets leaked through a black-holed window after set_params: {during} Mbps"
        );
        assert!(after > 10.0, "after {after}");
        assert!(
            result.links[0].dropped_outage > 0,
            "outage must actually have black-holed packets"
        );
    }

    /// A small, fast scenario for the executor tests.
    fn tiny(seed: u64) -> Scenario {
        Scenario::new(
            seed,
            vec![LinkParams::paper_default().with_capacity(Rate::from_mbps(5.0))],
            vec![ConnSpec::bulk("reno", vec![0])],
        )
        .with_duration(SimDuration::from_secs(6), SimDuration::from_secs(1))
    }

    #[test]
    fn map_preserves_submission_order() {
        let exec = Executor::new(4, None);
        let out = exec.map((0..100u64).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..100u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let mk = || (1..=4).map(tiny).collect::<Vec<_>>();
        let serial = Executor::serial().run_batch(mk());
        let par = Executor::new(4, None).run_batch(mk());
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.conns.len(), b.conns.len());
            for (ca, cb) in a.conns.iter().zip(&b.conns) {
                // Bit-identical, not approximately equal: parallelism must
                // not perturb the simulation at all.
                assert_eq!(ca.goodput_mbps.to_bits(), cb.goodput_mbps.to_bits());
                assert_eq!(ca.sent_packets, cb.sent_packets);
                assert_eq!(ca.lost_packets, cb.lost_packets);
            }
        }
    }

    #[test]
    fn seed_batches_match_serial_repetition() {
        let sc = tiny(7);
        // Hand-rolled serial repetition with the original seed schedule.
        let mut expect: Vec<Vec<f64>> = vec![Vec::new(); sc.conns.len()];
        for r in 0..3 {
            let mut sc_r = sc.clone();
            sc_r.seed = splitmix64(sc.seed ^ splitmix64(r + 1));
            let result = run(&sc_r);
            for (i, c) in result.conns.iter().enumerate() {
                expect[i].push(c.goodput_mbps);
            }
        }
        let exec = Executor::new(3, None);
        let got = run_seeds(&exec, &sc, 3);
        for (i, s) in got.iter().enumerate() {
            let e = Summary::of(&expect[i]);
            assert_eq!(s.mean.to_bits(), e.mean.to_bits());
        }
    }

    #[test]
    fn traced_parallel_merge_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("mpcc-exec-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mask = LayerMask::parse("transport").unwrap();
        let run_with = |jobs: usize, path: &Path| {
            let exec = Executor::new(
                jobs,
                Some(TraceConfig {
                    path: path.to_path_buf(),
                    mask,
                }),
            );
            exec.run_batch((1..=3).map(tiny).collect());
        };

        // JSONL: merged bytes identical across worker counts.
        let j1 = dir.join("serial.jsonl");
        let j4 = dir.join("par.jsonl");
        run_with(1, &j1);
        run_with(4, &j4);
        let b1 = fs::read(&j1).unwrap();
        assert!(!b1.is_empty(), "traced runs must emit records");
        assert_eq!(b1, fs::read(&j4).unwrap());

        // CSV: identical too, and exactly one header row (per-run headers
        // are stripped in the merge).
        let c1 = dir.join("serial.csv");
        let c4 = dir.join("par.csv");
        run_with(1, &c1);
        run_with(4, &c4);
        let s1 = fs::read_to_string(&c1).unwrap();
        assert_eq!(s1, fs::read_to_string(&c4).unwrap());
        let header = Record::csv_header();
        assert_eq!(s1.lines().next(), Some(header));
        assert_eq!(s1.lines().filter(|l| *l == header).count(), 1);

        // Per-run files are cleaned up after the merge.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".run"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "per-run files left behind: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_alongside_trace_leave_trace_bytes_unchanged() {
        let dir = std::env::temp_dir().join(format!("mpcc-metrics-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mask = LayerMask::parse("transport").unwrap();
        // Trace alone (the pre-metrics behaviour)…
        let t_alone = dir.join("alone.jsonl");
        Executor::new(
            2,
            Some(TraceConfig {
                path: t_alone.clone(),
                mask,
            }),
        )
        .run_batch((1..=2).map(tiny).collect());
        // …vs the same batch with a metrics pipeline teed in.
        let t_teed = dir.join("teed.jsonl");
        let m_teed = dir.join("teed-metrics.jsonl");
        Executor::new(
            2,
            Some(TraceConfig {
                path: t_teed.clone(),
                mask,
            }),
        )
        .with_metrics(MetricsConfig::new(m_teed.clone()))
        .run_batch((1..=2).map(tiny).collect());
        assert_eq!(
            fs::read(&t_alone).unwrap(),
            fs::read(&t_teed).unwrap(),
            "attaching metrics must not change trace bytes"
        );
        let metrics = fs::read_to_string(&m_teed).unwrap();
        assert!(!metrics.is_empty(), "metrics stream must not be empty");
        // Rows carry executor-assigned run ids (0 then 1, in merge order).
        assert!(metrics.lines().next().unwrap().contains("\"run\":0"));
        assert!(metrics.lines().last().unwrap().contains("\"run\":1"));

        // Metrics-only executors work too, and part files are cleaned up.
        let m_only = dir.join("only-metrics.csv");
        Executor::new(2, None)
            .with_metrics(MetricsConfig::new(m_only.clone()))
            .run_batch((1..=2).map(tiny).collect());
        let only = fs::read_to_string(&m_only).unwrap();
        assert_eq!(only.lines().next(), Some(MetricsPipeline::CSV_HEADER));
        assert_eq!(
            only.lines()
                .filter(|l| *l == MetricsPipeline::CSV_HEADER)
                .count(),
            1
        );
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".run"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "per-run files left behind: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
