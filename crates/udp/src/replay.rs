//! Trace replay under a manual clock: the deterministic half of the
//! sim-vs-real cross-check.
//!
//! [`ReplayHost`] drives one endpoint through the socket driver's state
//! machine with real I/O removed: time comes from a [`ManualClock`]
//! stepped to each event's timestamp, packet arrivals come from a
//! recorded [`PacketTrace`], and outbound packets are counted and
//! discarded (the peer's reactions are already baked into the trace).
//!
//! Determinism argument (see DESIGN.md §14): an endpoint's behaviour is a
//! function of (a) its packet arrivals with their timestamps, (b) the
//! order its timers fire relative to those arrivals, and (c) its private
//! rng stream. The replay host pins all three: arrivals are pre-loaded
//! into the same `EventQueue` the simulator uses — FIFO within a
//! timestamp, so a pre-loaded arrival at time `t` dispatches before any
//! timer armed *during* the run at `t`, exactly as
//! `mpcc_netsim::Simulation::inject` behaves — and the rng is whatever
//! the caller seeds (use `mpcc_netsim::endpoint_rng` for parity with a
//! simulated endpoint). Hence replaying the same trace here and in the
//! simulator must produce bit-identical controller decisions.

use mpcc_simcore::{Clock, EventQueue, ManualClock, SimDuration, SimRng, SimTime};
use mpcc_telemetry::Tracer;
use mpcc_transport::wire::{EndpointId, Header, Packet, PathId};
use mpcc_transport::{Endpoint, HostCtx, PacketTrace};

/// A replay event: a recorded arrival or a timer armed during the run.
enum Ev {
    Arrive(Packet),
    Timer(u64),
}

/// Counters accumulated during a replay; see [`ReplayHost::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Recorded packets delivered to the endpoint.
    pub delivered: u64,
    /// Outbound packets discarded (no real peer under replay).
    pub discarded_sends: u64,
    /// Timer callbacks dispatched.
    pub timers_fired: u64,
}

struct ReplayState {
    clock: ManualClock,
    self_id: EndpointId,
    rng: SimRng,
    tracer: Tracer,
    queue: EventQueue<Ev>,
    base_rtts: Vec<SimDuration>,
    stats: ReplayStats,
}

impl HostCtx for ReplayState {
    fn now(&self) -> SimTime {
        // `ManualClock` is a plain value; reading it is free and `Clock`'s
        // `&mut` contract is about advancement, not observation.
        let mut c = self.clock;
        c.now()
    }

    fn self_id(&self) -> EndpointId {
        self.self_id
    }

    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn send(&mut self, _path: PathId, _dst: EndpointId, _size: u64, _header: Header) {
        self.stats.discarded_sends += 1;
    }

    fn send_reverse(&mut self, _path: PathId, _dst: EndpointId, _size: u64, _header: Header) {
        self.stats.discarded_sends += 1;
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.queue.schedule(at, Ev::Timer(token));
    }

    fn path_base_rtt(&self, path: PathId) -> SimDuration {
        self.base_rtts[path.0 as usize]
    }
}

/// Replays a recorded packet trace into an endpoint under a manual clock.
pub struct ReplayHost {
    state: ReplayState,
    endpoint: Box<dyn Endpoint>,
}

impl ReplayHost {
    /// Creates a replay host for `endpoint`.
    ///
    /// `base_rtts[i]` is what [`HostCtx::path_base_rtt`] reports for path
    /// `i`; for a cross-check it must equal the replayed simulation's
    /// per-path base RTT, and `rng` must be the endpoint's stream there
    /// (`mpcc_netsim::endpoint_rng(seed, id)`).
    pub fn new(
        self_id: EndpointId,
        rng: SimRng,
        tracer: Tracer,
        base_rtts: Vec<SimDuration>,
        endpoint: Box<dyn Endpoint>,
    ) -> Self {
        ReplayHost {
            state: ReplayState {
                clock: ManualClock::new(),
                self_id,
                rng,
                tracer,
                queue: EventQueue::new(),
                base_rtts,
                stats: ReplayStats::default(),
            },
            endpoint,
        }
    }

    /// Pre-loads every recorded arrival. Must be called before [`run`]
    /// (pre-loading is what guarantees arrivals dispatch ahead of
    /// same-instant timers armed during the run).
    ///
    /// [`run`]: ReplayHost::run
    pub fn load(&mut self, trace: &PacketTrace) {
        for e in &trace.entries {
            self.state.queue.schedule(e.at, Ev::Arrive(e.pkt));
        }
    }

    /// Replay counters.
    pub fn stats(&self) -> ReplayStats {
        self.state.stats
    }

    /// Downcasts the endpoint for inspection.
    ///
    /// # Panics
    /// Panics on a concrete-type mismatch.
    pub fn endpoint<T: 'static>(&self) -> &T {
        self.endpoint
            .as_any()
            .downcast_ref::<T>()
            .expect("endpoint type mismatch")
    }

    /// Starts the endpoint at time zero and replays events until the
    /// queue is empty or the clock would pass `until` (timers re-armed
    /// beyond the horizon are left unfired, which is what bounds the run:
    /// a sender re-arms its periodic timers forever).
    pub fn run(&mut self, until: SimTime) {
        self.endpoint.start(&mut self.state);
        while let Some(t) = self.state.queue.peek_time() {
            if t > until {
                break;
            }
            let (t, ev) = self.state.queue.pop().expect("peeked");
            self.state.clock.advance_to(t);
            match ev {
                Ev::Arrive(pkt) => {
                    self.state.stats.delivered += 1;
                    self.endpoint.on_packet(pkt, &mut self.state);
                }
                Ev::Timer(token) => {
                    self.state.stats.timers_fired += 1;
                    self.endpoint.on_timer(token, &mut self.state);
                }
            }
        }
    }
}
