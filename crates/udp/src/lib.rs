//! # mpcc-udp
//!
//! A real-socket UDP data plane for the MPCC transport: the second driver
//! behind the [`mpcc_transport::HostCtx`] seam (the first is the
//! `mpcc-netsim` simulator).
//!
//! Three pieces:
//!
//! * [`codec`] — the binary wire format: one datagram per packet,
//!   fixed-width little-endian fields, total (panic-free) decoding;
//! * [`UdpPeer`] — a work-batching non-blocking socket loop under a
//!   monotonic clock, one UDP socket per path, driving an unmodified
//!   transport endpoint ([`MpSender`](mpcc_transport::MpSender) /
//!   [`MpReceiver`](mpcc_transport::MpReceiver));
//! * [`ReplayHost`] — the same endpoint-facing machinery with I/O and the
//!   real clock removed, replaying a recorded packet trace under a manual
//!   clock. This is what makes the socket path *testable against the
//!   simulator*: replaying one recorded ACK trace through both drivers
//!   must reproduce the controller's decisions bit-for-bit (see
//!   DESIGN.md §14 and `tests/udp_crosscheck.rs` at the workspace root).

#![warn(missing_docs)]

pub mod codec;
pub mod host;
pub mod replay;

pub use codec::{decode, encode, DecodeError};
pub use host::{HostStats, UdpPath, UdpPeer};
pub use replay::{ReplayHost, ReplayStats};
