//! The real-socket driver: non-blocking UDP under a monotonic clock.
//!
//! [`UdpPeer`] drives one transport [`Endpoint`] the same way
//! `mpcc_netsim::Simulation` does — it owns the endpoint, hands it a
//! [`HostCtx`] per callback, and fires its timers — except that packets
//! travel over real UDP sockets (one socket per path) and "now" comes
//! from a [`MonotonicClock`] anchored at driver construction.
//!
//! The loop is work-batching: each turn reads the clock once, fires every
//! due timer, then drains every socket until it would block; it only
//! sleeps when a full turn found nothing to do, and never longer than the
//! next timer deadline (capped at 500 µs so a newly arrived datagram is
//! picked up promptly). Send-side `WouldBlock` and malformed inbound
//! datagrams are counted and dropped — to the transport they are
//! indistinguishable from network loss, which is exactly what a real
//! network would do.

use crate::codec::{self, DecodeError};
use mpcc_simcore::{Clock, EventQueue, MonotonicClock, SimDuration, SimRng, SimTime};
use mpcc_telemetry::Tracer;
use mpcc_transport::wire::{EndpointId, Header, Packet, PathId, MSS_WIRE};
use mpcc_transport::{Endpoint, HostCtx};
use std::net::{SocketAddr, UdpSocket};

/// One path of a [`UdpPeer`]: a bound (and usually connected) socket plus
/// the a-priori RTT hint the transport seeds its estimator with.
pub struct UdpPath {
    /// The socket carrying this path's datagrams (both directions).
    pub socket: UdpSocket,
    /// Where this path's datagrams go. `None` until learned from the
    /// first inbound datagram (listener side).
    pub peer: Option<SocketAddr>,
    /// A-priori RTT estimate handed to the transport at setup
    /// ([`HostCtx::path_base_rtt`]).
    pub base_rtt_hint: SimDuration,
}

impl UdpPath {
    /// A path over `socket` sending to `peer`, with a base-RTT hint.
    pub fn to(socket: UdpSocket, peer: SocketAddr, base_rtt_hint: SimDuration) -> Self {
        UdpPath {
            socket,
            peer: Some(peer),
            base_rtt_hint,
        }
    }

    /// A listening path: the peer address is learned from the first
    /// datagram that arrives on `socket`.
    pub fn listening(socket: UdpSocket, base_rtt_hint: SimDuration) -> Self {
        UdpPath {
            socket,
            peer: None,
            base_rtt_hint,
        }
    }
}

/// Counters the loop accumulates; see [`UdpPeer::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    /// Datagrams handed to the kernel.
    pub sent_datagrams: u64,
    /// Datagrams received and decoded.
    pub received_datagrams: u64,
    /// Sends dropped (kernel buffer full or transient send error).
    pub send_drops: u64,
    /// Inbound datagrams that failed to decode.
    pub decode_errors: u64,
    /// Timer callbacks dispatched.
    pub timers_fired: u64,
    /// Turns that found no work and slept.
    pub idle_sleeps: u64,
}

/// The driver-state half of [`UdpPeer`]; this is what the endpoint sees
/// as its [`HostCtx`]. Split from the endpoint itself so dispatch can
/// borrow both halves at once.
struct HostState {
    now: SimTime,
    clock: MonotonicClock,
    self_id: EndpointId,
    rng: SimRng,
    tracer: Tracer,
    timers: EventQueue<u64>,
    paths: Vec<UdpPath>,
    next_packet_id: u64,
    encode_buf: Vec<u8>,
    stats: HostStats,
}

impl HostState {
    fn transmit(&mut self, path: PathId, dst: EndpointId, size: u64, header: Header) {
        let Some(p) = self.paths.get_mut(path.0 as usize) else {
            debug_assert!(false, "send on unknown {path:?}");
            self.stats.send_drops += 1;
            return;
        };
        let Some(peer) = p.peer else {
            // Listener side before the first inbound datagram: nowhere to
            // send yet. Counted as a drop; the transport retransmits.
            self.stats.send_drops += 1;
            return;
        };
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let pkt = Packet {
            id,
            src: self.self_id,
            dst,
            path,
            hop: usize::MAX,
            size,
            header,
        };
        codec::encode(&pkt, &mut self.encode_buf);
        match p.socket.send_to(&self.encode_buf, peer) {
            Ok(_) => self.stats.sent_datagrams += 1,
            Err(_) => self.stats.send_drops += 1,
        }
    }
}

impl HostCtx for HostState {
    fn now(&self) -> SimTime {
        self.now
    }

    fn self_id(&self) -> EndpointId {
        self.self_id
    }

    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn send(&mut self, path: PathId, dst: EndpointId, size: u64, header: Header) {
        self.transmit(path, dst, size, header);
    }

    /// On a socket driver the "reverse direction" is the same socket the
    /// data arrived on: UDP sockets are bidirectional.
    fn send_reverse(&mut self, path: PathId, dst: EndpointId, size: u64, header: Header) {
        self.transmit(path, dst, size, header);
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        // The transport arms timers relative to the frozen callback `now`,
        // which can trail the queue's last-fired deadline by the time the
        // callback itself took; clamp rather than panic.
        self.timers.schedule(at.max(self.timers.now()), token);
    }

    fn path_base_rtt(&self, path: PathId) -> SimDuration {
        self.paths[path.0 as usize].base_rtt_hint
    }
}

/// Longest idle sleep: short enough that a datagram arriving mid-sleep
/// adds at most ~0.5 ms of latency, long enough not to spin.
const MAX_IDLE_SLEEP: SimDuration = SimDuration::from_micros(500);
/// Datagrams drained per socket per turn before timers get another look.
const RECV_BATCH: usize = 64;

/// A real-socket host driving one transport endpoint.
pub struct UdpPeer {
    state: HostState,
    endpoint: Box<dyn Endpoint>,
    started: bool,
    recv_buf: Box<[u8]>,
}

impl UdpPeer {
    /// Creates a host for `endpoint` speaking over `paths`.
    ///
    /// Sockets are switched to non-blocking mode here. `rng` is the
    /// endpoint's private stream — pass `mpcc_netsim::endpoint_rng(seed,
    /// self_id)` to make controller decisions comparable with a simulated
    /// run of the same endpoint.
    pub fn new(
        self_id: EndpointId,
        rng: SimRng,
        tracer: Tracer,
        paths: Vec<UdpPath>,
        endpoint: Box<dyn Endpoint>,
    ) -> std::io::Result<Self> {
        assert!(!paths.is_empty(), "a UDP host needs at least one path");
        for p in &paths {
            p.socket.set_nonblocking(true)?;
        }
        Ok(UdpPeer {
            state: HostState {
                now: SimTime::ZERO,
                clock: MonotonicClock::new(),
                self_id,
                rng,
                tracer,
                timers: EventQueue::new(),
                paths,
                next_packet_id: 0,
                encode_buf: Vec::with_capacity(codec::max_encoded_len(MSS_WIRE)),
                stats: HostStats::default(),
            },
            endpoint,
            started: false,
            recv_buf: vec![0u8; 65_536].into_boxed_slice(),
        })
    }

    /// Loop counters.
    pub fn stats(&self) -> HostStats {
        self.state.stats
    }

    /// The driver clock's current reading (nanoseconds since construction).
    pub fn now(&mut self) -> SimTime {
        self.state.clock.now()
    }

    /// Downcasts the endpoint for inspection.
    ///
    /// # Panics
    /// Panics on a concrete-type mismatch.
    pub fn endpoint<T: 'static>(&self) -> &T {
        self.endpoint
            .as_any()
            .downcast_ref::<T>()
            .expect("endpoint type mismatch")
    }

    /// Drives the endpoint until `done` returns `true` (checked once per
    /// turn) or the driver clock passes `deadline`. Returns `true` if
    /// `done` fired, `false` on deadline.
    pub fn run(&mut self, deadline: SimTime, mut done: impl FnMut(&dyn Endpoint) -> bool) -> bool {
        loop {
            let now = self.state.clock.now();
            self.state.now = now;
            if !self.started {
                self.started = true;
                self.endpoint.start(&mut self.state);
                continue;
            }
            let mut worked = false;
            // Fire every due timer at this turn's frozen `now`.
            while self.state.timers.peek_time().is_some_and(|t| t <= now) {
                let (_, token) = self.state.timers.pop().expect("peeked");
                self.state.stats.timers_fired += 1;
                self.endpoint.on_timer(token, &mut self.state);
                worked = true;
            }
            // Drain each socket (bounded per turn so timers stay timely).
            for i in 0..self.state.paths.len() {
                for _ in 0..RECV_BATCH {
                    let r = self.state.paths[i].socket.recv_from(&mut self.recv_buf);
                    let (len, from) = match r {
                        Ok(ok) => ok,
                        Err(_) => break, // WouldBlock or transient error
                    };
                    if self.state.paths[i].peer.is_none() {
                        self.state.paths[i].peer = Some(from);
                    }
                    match codec::decode(&self.recv_buf[..len]) {
                        Ok(mut pkt) => {
                            // The wire carries the sender's path numbering;
                            // locally the packet arrived on path `i`.
                            pkt.path = PathId(i as u32);
                            self.state.stats.received_datagrams += 1;
                            self.endpoint.on_packet(pkt, &mut self.state);
                            worked = true;
                        }
                        Err(DecodeError::Truncated { .. })
                        | Err(DecodeError::BadMagic)
                        | Err(DecodeError::BadVersion(_))
                        | Err(DecodeError::BadKind(_))
                        | Err(DecodeError::BadSackCount(_)) => {
                            self.state.stats.decode_errors += 1;
                        }
                    }
                }
            }
            if done(self.endpoint.as_ref()) {
                return true;
            }
            if now >= deadline {
                return false;
            }
            if !worked {
                // Nothing due, nothing readable: sleep until the next
                // timer (capped) instead of spinning.
                let until_timer = self
                    .state
                    .timers
                    .peek_time()
                    .map(|t| t.saturating_since(now))
                    .unwrap_or(MAX_IDLE_SLEEP);
                let nap = until_timer.min(MAX_IDLE_SLEEP);
                if !nap.is_zero() {
                    self.state.stats.idle_sleeps += 1;
                    std::thread::sleep(std::time::Duration::from_nanos(nap.as_nanos()));
                }
            }
        }
    }
}
