//! Binary wire format for MPCC packets carried in UDP datagrams.
//!
//! One datagram carries one [`Packet`]. The layout is little-endian and
//! fixed-width — no varints, no compression — so encode/decode are a few
//! dozen loads and stores and the format is trivially fuzzable:
//!
//! ```text
//! offset  size  field
//!      0     2  magic 0x50 0x4D ("PM")
//!      2     1  version (1)
//!      3     1  kind (1 = DATA, 2 = ACK)
//!      4     4  src endpoint id
//!      8     4  dst endpoint id
//!     12     4  path id
//!     16     8  packet id (diagnostics only)
//!     24     8  modelled wire size in bytes
//!     32     …  header body (see below)
//! ```
//!
//! DATA body: subflow u32, seq u64, dsn u64, payload_len u64, sent_at
//! nanos u64, is_retransmission u8 — then zero padding up to the modelled
//! wire size, so a full-sized segment really occupies ~MTU bytes on the
//! loopback and goodput numbers mean what they say. (The padding stands in
//! for application payload; this repo's transport moves byte *counts*, not
//! application data.)
//!
//! ACK body: subflow u32, cum_ack u64, ack_seq u64, echo_sent_at nanos
//! u64, data_acked u64, rcv_window u64, sack count u8, then `count` ×
//! (start u64, end u64). An ACK's encoding may exceed its modelled
//! [`ACK_SIZE`] — the modelled size is what the congestion accounting
//! uses; the datagram is as long as it needs to be.
//!
//! Decoding is total: any input — truncated, oversized, garbage — returns
//! `Ok` or a [`DecodeError`], never panics. The decoder validates magic,
//! version, kind and the SACK count, and ignores trailing padding.

use mpcc_simcore::SimTime;
use mpcc_transport::wire::{
    AckHeader, DataHeader, EndpointId, Header, Packet, PathId, SackBlocks, SeqRange,
    MAX_SACK_BLOCKS,
};
use std::fmt;

/// First two bytes of every datagram.
pub const MAGIC: [u8; 2] = [0x50, 0x4D];
/// Format version this build speaks.
pub const VERSION: u8 = 1;

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

/// Bytes before the header body.
const FIXED_LEN: usize = 32;
/// Encoded length of a DATA header body.
const DATA_BODY_LEN: usize = 4 + 8 + 8 + 8 + 8 + 1;
/// Encoded length of an ACK header body with `n` SACK blocks.
const fn ack_body_len(n: usize) -> usize {
    4 + 8 + 8 + 8 + 8 + 8 + 1 + n * 16
}

/// Largest datagram `encode` can produce for a packet whose modelled size
/// is at most `max_size`.
pub const fn max_encoded_len(max_size: u64) -> usize {
    let data = FIXED_LEN + DATA_BODY_LEN;
    let ack = FIXED_LEN + ack_body_len(MAX_SACK_BLOCKS);
    let padded = max_size as usize;
    let mut m = if data > ack { data } else { ack };
    if padded > m {
        m = padded;
    }
    m
}

/// Why a datagram failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed part of the declared layout.
    Truncated {
        /// Bytes required to finish decoding.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown packet kind byte.
    BadKind(u8),
    /// SACK count above [`MAX_SACK_BLOCKS`].
    BadSackCount(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "datagram truncated: need {need} bytes, have {have}")
            }
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown packet kind {k}"),
            DecodeError::BadSackCount(n) => write!(f, "sack count {n} exceeds the wire limit"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked little-endian reader. Every read returns a
/// [`DecodeError::Truncated`] instead of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated {
            need: usize::MAX,
            have: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated {
                need: end,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes `pkt` into `out` (cleared first). DATA packets are zero-padded
/// to the packet's modelled wire size so the datagram occupies real bytes
/// on the wire; ACKs are exactly as long as their encoding.
pub fn encode(pkt: &Packet, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(match pkt.header {
        Header::Data(_) => KIND_DATA,
        Header::Ack(_) => KIND_ACK,
    });
    put_u32(out, pkt.src.0);
    put_u32(out, pkt.dst.0);
    put_u32(out, pkt.path.0);
    put_u64(out, pkt.id);
    put_u64(out, pkt.size);
    debug_assert_eq!(out.len(), FIXED_LEN);
    match &pkt.header {
        Header::Data(d) => {
            put_u32(out, d.subflow);
            put_u64(out, d.seq);
            put_u64(out, d.dsn);
            put_u64(out, d.payload_len);
            put_u64(out, d.sent_at.as_nanos());
            out.push(d.is_retransmission as u8);
            // Pad to the modelled wire size (stand-in for payload bytes).
            let target = pkt.size as usize;
            if target > out.len() {
                out.resize(target, 0);
            }
        }
        Header::Ack(a) => {
            put_u32(out, a.subflow);
            put_u64(out, a.cum_ack);
            put_u64(out, a.ack_seq);
            put_u64(out, a.echo_sent_at.as_nanos());
            put_u64(out, a.data_acked);
            put_u64(out, a.rcv_window);
            let blocks = a.sack.as_slice();
            out.push(blocks.len() as u8);
            for b in blocks {
                put_u64(out, b.start);
                put_u64(out, b.end);
            }
        }
    }
}

/// Decodes one datagram. Total: returns an error on any malformed input,
/// never panics. The decoded packet's `hop` is `usize::MAX` (socket
/// drivers have no hops).
pub fn decode(buf: &[u8]) -> Result<Packet, DecodeError> {
    let mut r = Reader::new(buf);
    if r.take(2)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let ver = r.u8()?;
    if ver != VERSION {
        return Err(DecodeError::BadVersion(ver));
    }
    let kind = r.u8()?;
    let src = EndpointId(r.u32()?);
    let dst = EndpointId(r.u32()?);
    let path = PathId(r.u32()?);
    let id = r.u64()?;
    let size = r.u64()?;
    let header = match kind {
        KIND_DATA => Header::Data(DataHeader {
            subflow: r.u32()?,
            seq: r.u64()?,
            dsn: r.u64()?,
            payload_len: r.u64()?,
            sent_at: SimTime::from_nanos(r.u64()?),
            is_retransmission: r.u8()? != 0,
        }),
        KIND_ACK => {
            let subflow = r.u32()?;
            let cum_ack = r.u64()?;
            let ack_seq = r.u64()?;
            let echo_sent_at = SimTime::from_nanos(r.u64()?);
            let data_acked = r.u64()?;
            let rcv_window = r.u64()?;
            let n = r.u8()?;
            if n as usize > MAX_SACK_BLOCKS {
                return Err(DecodeError::BadSackCount(n));
            }
            let mut sack = SackBlocks::new();
            for _ in 0..n {
                sack.push(SeqRange {
                    start: r.u64()?,
                    end: r.u64()?,
                });
            }
            Header::Ack(AckHeader {
                subflow,
                cum_ack,
                sack,
                ack_seq,
                echo_sent_at,
                data_acked,
                rcv_window,
            })
        }
        k => return Err(DecodeError::BadKind(k)),
    };
    Ok(Packet {
        id,
        src,
        dst,
        path,
        hop: usize::MAX,
        size,
        header,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcc_transport::wire::{ACK_SIZE, MSS_PAYLOAD, MSS_WIRE};

    fn data_packet() -> Packet {
        Packet {
            id: 42,
            src: EndpointId(0),
            dst: EndpointId(1),
            path: PathId(1),
            hop: usize::MAX,
            size: MSS_WIRE,
            header: Header::Data(DataHeader {
                subflow: 1,
                seq: 77,
                dsn: 77 * MSS_PAYLOAD,
                payload_len: MSS_PAYLOAD,
                sent_at: SimTime::from_micros(123_456),
                is_retransmission: true,
            }),
        }
    }

    fn ack_packet(blocks: usize) -> Packet {
        let sack = SackBlocks::from_ranges((0..blocks as u64).map(|i| SeqRange {
            start: 100 * i,
            end: 100 * i + 5,
        }));
        Packet {
            id: 7,
            src: EndpointId(1),
            dst: EndpointId(0),
            path: PathId(0),
            hop: usize::MAX,
            size: ACK_SIZE,
            header: Header::Ack(AckHeader {
                subflow: 0,
                cum_ack: 99,
                sack,
                ack_seq: 104,
                echo_sent_at: SimTime::from_nanos(5),
                data_acked: 12_345,
                rcv_window: u64::MAX,
            }),
        }
    }

    #[test]
    fn data_round_trips_and_pads_to_wire_size() {
        let pkt = data_packet();
        let mut buf = Vec::new();
        encode(&pkt, &mut buf);
        assert_eq!(buf.len(), MSS_WIRE as usize);
        let back = decode(&buf).unwrap();
        assert_eq!(back.header, pkt.header);
        assert_eq!(back.size, pkt.size);
        assert_eq!(back.src, pkt.src);
        assert_eq!(back.dst, pkt.dst);
        assert_eq!(back.path, pkt.path);
        assert_eq!(back.hop, usize::MAX);
    }

    #[test]
    fn ack_round_trips_with_any_block_count() {
        for n in 0..=MAX_SACK_BLOCKS {
            let pkt = ack_packet(n);
            let mut buf = Vec::new();
            encode(&pkt, &mut buf);
            let back = decode(&buf).unwrap();
            assert_eq!(back.header, pkt.header, "blocks = {n}");
            assert!(buf.len() <= max_encoded_len(MSS_WIRE));
        }
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let pkt = ack_packet(MAX_SACK_BLOCKS);
        let mut buf = Vec::new();
        encode(&pkt, &mut buf);
        // Padding-free encoding: every prefix must fail cleanly.
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut]).is_err(), "prefix of {cut} decoded");
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(
            decode(&[]),
            Err(DecodeError::Truncated { need: 2, have: 0 })
        );
        assert_eq!(decode(&[0xFF; 64]).unwrap_err(), DecodeError::BadMagic);
        let mut buf = Vec::new();
        encode(&data_packet(), &mut buf);
        buf[2] = 9;
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::BadVersion(9));
        buf[2] = VERSION;
        buf[3] = 3;
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::BadKind(3));
        let mut buf = Vec::new();
        encode(&ack_packet(2), &mut buf);
        buf[FIXED_LEN + 4 + 8 * 5] = 200; // sack count byte
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::BadSackCount(200));
    }
}
