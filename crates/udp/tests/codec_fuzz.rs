//! Deterministic fuzzing of the UDP wire codec.
//!
//! The decoder's contract is totality: any byte string — pure garbage,
//! truncated encodings, bit-flipped encodings — must return `Ok` or a
//! `DecodeError`, never panic. These tests drive it with a seeded
//! `SimRng` so failures reproduce exactly.

use mpcc_simcore::{SimRng, SimTime};
use mpcc_transport::wire::{
    AckHeader, DataHeader, EndpointId, Header, Packet, PathId, SackBlocks, SeqRange,
    MAX_SACK_BLOCKS, MSS_WIRE,
};
use mpcc_udp::codec::{decode, encode};

fn rng(tag: u64) -> SimRng {
    SimRng::seed_from_u64(0).fork(0xF022, tag)
}

/// A pseudo-random but structurally valid packet.
fn arbitrary_packet(r: &mut SimRng) -> Packet {
    let header = if r.next_u64().is_multiple_of(2) {
        Header::Data(DataHeader {
            subflow: r.next_u64() as u32,
            seq: r.next_u64(),
            dsn: r.next_u64(),
            payload_len: r.next_u64(),
            sent_at: SimTime::from_nanos(r.next_u64()),
            is_retransmission: r.next_u64().is_multiple_of(2),
        })
    } else {
        let n = (r.next_u64() as usize) % (MAX_SACK_BLOCKS + 1);
        let sack = SackBlocks::from_ranges((0..n).map(|_| SeqRange {
            start: r.next_u64(),
            end: r.next_u64(),
        }));
        Header::Ack(AckHeader {
            subflow: r.next_u64() as u32,
            cum_ack: r.next_u64(),
            sack,
            ack_seq: r.next_u64(),
            echo_sent_at: SimTime::from_nanos(r.next_u64()),
            data_acked: r.next_u64(),
            rcv_window: r.next_u64(),
        })
    };
    Packet {
        id: r.next_u64(),
        src: EndpointId(r.next_u64() as u32),
        dst: EndpointId(r.next_u64() as u32),
        path: PathId(r.next_u64() as u32),
        hop: usize::MAX,
        // Keep the modelled size small enough that padding stays sane.
        size: r.next_u64() % (2 * MSS_WIRE),
        header,
    }
}

#[test]
fn round_trip_holds_for_arbitrary_packets() {
    let mut r = rng(1);
    let mut buf = Vec::new();
    for i in 0..2_000 {
        let pkt = arbitrary_packet(&mut r);
        encode(&pkt, &mut buf);
        let back = decode(&buf).unwrap_or_else(|e| panic!("iteration {i}: {e}"));
        assert_eq!(back.header, pkt.header, "iteration {i}");
        assert_eq!(back.size, pkt.size, "iteration {i}");
        assert_eq!(
            (back.src, back.dst, back.path),
            (pkt.src, pkt.dst, pkt.path)
        );
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    let mut r = rng(2);
    for _ in 0..5_000 {
        let len = (r.next_u64() as usize) % 256;
        let buf: Vec<u8> = (0..len).map(|_| r.next_u64() as u8).collect();
        let _ = decode(&buf); // must return, Ok or Err
    }
}

#[test]
fn decoder_never_panics_on_truncations() {
    let mut r = rng(3);
    let mut buf = Vec::new();
    for _ in 0..200 {
        let pkt = arbitrary_packet(&mut r);
        encode(&pkt, &mut buf);
        // Every strict prefix of a DATA datagram shorter than its header,
        // and of an ACK anywhere, must decode to an error or (for padded
        // DATA) the original; never panic.
        let step = 1 + (buf.len() / 64);
        for cut in (0..buf.len()).step_by(step) {
            let _ = decode(&buf[..cut]);
        }
    }
}

#[test]
fn decoder_never_panics_on_bit_flips() {
    let mut r = rng(4);
    let mut buf = Vec::new();
    for _ in 0..500 {
        let pkt = arbitrary_packet(&mut r);
        encode(&pkt, &mut buf);
        for _ in 0..8 {
            let pos = (r.next_u64() as usize) % buf.len();
            let bit = 1u8 << (r.next_u64() % 8);
            buf[pos] ^= bit;
            let _ = decode(&buf);
            buf[pos] ^= bit; // restore
        }
    }
}
