//! Quickstart: one MPCC connection with two subflows over two 100 Mbps
//! links, printing per-subflow rates once per second.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpcc::{Mpcc, MpccConfig};
use mpcc_netsim::link::LinkParams;
use mpcc_netsim::topology::uniform_parallel_links;
use mpcc_simcore::SimTime;
use mpcc_transport::{MpReceiver, MpSender, SchedulerKind, SenderConfig};

fn main() {
    // 1. Build a network: two parallel bottleneck links with the paper's
    //    defaults (100 Mbps, 30 ms, 1 BDP of buffer).
    let mut net = uniform_parallel_links(42, 2, LinkParams::paper_default());
    let path_a = net.path(0);
    let path_b = net.path(1);
    let mut sim = net.sim;

    // 2. Attach a legacy multipath receiver (MPCC changes the sender only).
    let receiver = sim.add_endpoint(Box::new(MpReceiver::paper_default()));

    // 3. Attach an MPCC sender: the latency-sensitive variant (γ = 1),
    //    paced through the paper's rate-based scheduler (§6).
    let cc = Mpcc::new(MpccConfig::latency().with_seed(7));
    let config = SenderConfig::bulk(receiver, vec![path_a, path_b])
        .with_scheduler(SchedulerKind::paper_rate_based());
    let sender = sim.add_endpoint(Box::new(MpSender::new(config, Box::new(cc))));

    // 4. Run, sampling once per second.
    println!(
        "{:>4}  {:>13}  {:>12}  {:>12}",
        "t", "goodput", "subflow 1", "subflow 2"
    );
    let mut last_acked = 0;
    let mut now = SimTime::ZERO;
    for sec in 1..=30u64 {
        now = SimTime::from_secs(sec);
        sim.run_until(now);
        let s = sim.endpoint::<MpSender>(sender);
        let acked = s.data_acked();
        let goodput = (acked - last_acked) as f64 * 8.0 / 1e6;
        last_acked = acked;
        println!(
            "{:>3}s  {:>8.1} Mb/s  {:>7.1} Mb/s  {:>7.1} Mb/s",
            sec,
            goodput,
            s.subflow_stats(0, now).pacing_rate.mbps(),
            s.subflow_stats(1, now).pacing_rate.mbps(),
        );
    }
    let s = sim.endpoint::<MpSender>(sender);
    println!(
        "\ntotals: {:.1} MB delivered, {} packets lost, srtt {:.1} / {:.1} ms",
        s.data_acked() as f64 / 1e6,
        s.subflow_stats(0, now).lost_packets + s.subflow_stats(1, now).lost_packets,
        s.subflow_stats(0, now).srtt.as_millis_f64(),
        s.subflow_stats(1, now).srtt.as_millis_f64(),
    );
}
