//! Fault injection: how each multipath protocol copes with non-congestion
//! loss (§7.2.2) — sweep the random-loss rate of one path and watch the
//! loss-based MPTCP family collapse while MPCC keeps the link busy.
//!
//! ```sh
//! cargo run --release --example lossy_link [loss_percent...]
//! ```

use mpcc_experiments::protocols;
use mpcc_netsim::link::LinkParams;
use mpcc_netsim::topology::parallel_links;
use mpcc_simcore::SimTime;
use mpcc_transport::{MpReceiver, MpSender, SenderConfig};

fn goodput(proto: &str, loss: f64) -> f64 {
    let links = [
        LinkParams::paper_default().with_random_loss(loss),
        LinkParams::paper_default(),
    ];
    let mut net = parallel_links(3, &links);
    let p0 = net.path(0);
    let p1 = net.path(1);
    let mut sim = net.sim;
    let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
    let cfg =
        SenderConfig::bulk(recv, vec![p0, p1]).with_scheduler(protocols::scheduler_for(proto));
    let sender = sim.add_endpoint(Box::new(MpSender::new(cfg, protocols::make(proto, 5))));
    sim.run_until(SimTime::from_secs(10));
    let warm = sim.endpoint::<MpSender>(sender).data_acked();
    sim.run_until(SimTime::from_secs(40));
    let total = sim.endpoint::<MpSender>(sender).data_acked();
    (total - warm) as f64 * 8.0 / 30.0 / 1e6
}

fn main() {
    let losses: Vec<f64> = {
        let args: Vec<f64> = std::env::args()
            .skip(1)
            .map(|a| a.parse::<f64>().expect("loss % as a number") / 100.0)
            .collect();
        if args.is_empty() {
            vec![0.0, 0.0001, 0.001, 0.01, 0.05]
        } else {
            args
        }
    };
    let protos = ["mpcc-loss", "lia", "olia", "balia", "bbr"];
    print!("{:>9}", "loss");
    for p in protos {
        print!("  {p:>10}");
    }
    println!("\n{}", "-".repeat(9 + protos.len() * 12));
    for loss in losses {
        print!("{:>8.3}%", loss * 100.0);
        for p in protos {
            print!("  {:>10.1}", goodput(p, loss));
        }
        println!();
    }
    println!(
        "\n(goodput in Mbps of one 2-subflow connection over 2×100 Mb/s; loss on link 1 only)"
    );
}
