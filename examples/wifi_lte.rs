//! The paper's motivating scenario: a phone/laptop with a WiFi and an LTE
//! interface downloading a file, comparing MPCC against MPTCP (LIA) and
//! uncoupled BBR on the same asymmetric path pair.
//!
//! ```sh
//! cargo run --release --example wifi_lte
//! ```

use mpcc_netsim::fault::FaultPlan;
use mpcc_netsim::link::LinkParams;
use mpcc_netsim::topology::parallel_links;
use mpcc_simcore::{Rate, SimDuration, SimTime};
use mpcc_transport::{MpReceiver, MpSender, SenderConfig, Workload};

const FILE_BYTES: u64 = 25_000_000; // a 25 MB download

fn wifi() -> LinkParams {
    // Decent bandwidth, shallow buffer, bursty loss.
    LinkParams {
        capacity: Rate::from_mbps(30.0),
        delay: SimDuration::from_millis(15),
        buffer: 120_000,
        random_loss: 0.003,
        faults: FaultPlan::NONE,
    }
}

fn lte() -> LinkParams {
    // Less bandwidth, +40 ms access latency, deep bufferbloat-prone queue.
    LinkParams {
        capacity: Rate::from_mbps(18.0),
        delay: SimDuration::from_millis(55),
        buffer: 600_000,
        random_loss: 0.008,
        faults: FaultPlan::NONE,
    }
}

fn download(proto: &str) -> (f64, f64, f64) {
    let mut net = parallel_links(11, &[wifi(), lte()]);
    let p_wifi = net.path(0);
    let p_lte = net.path(1);
    let mut sim = net.sim;
    let receiver = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
    let cc = mpcc_experiments::protocols::make(proto, 99);
    let config = SenderConfig {
        dst: receiver,
        paths: vec![p_wifi, p_lte],
        workload: Workload::Finite(FILE_BYTES),
        scheduler: mpcc_experiments::protocols::scheduler_for(proto),
        start_at: SimTime::ZERO,
        peer_buffer: 300_000_000,
    };
    let sender = sim.add_endpoint(Box::new(MpSender::new(config, cc)));
    let end = SimTime::from_secs(300);
    sim.run_until(end);
    let s = sim.endpoint::<MpSender>(sender);
    let fct = s.fct().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
    let wifi_mb = s.subflow_stats(0, end).delivered_bytes as f64 / 1e6;
    let lte_mb = s.subflow_stats(1, end).delivered_bytes as f64 / 1e6;
    (fct, wifi_mb, lte_mb)
}

fn main() {
    println!(
        "downloading {} MB over WiFi (30 Mb/s, 0.3% loss) + LTE (18 Mb/s, +40 ms, 0.8% loss)\n",
        FILE_BYTES / 1_000_000
    );
    println!(
        "{:>13}  {:>9}  {:>9}  {:>9}  {:>9}",
        "protocol", "time", "via WiFi", "via LTE", "goodput"
    );
    for proto in ["mpcc-latency", "mpcc-loss", "lia", "olia", "balia", "bbr"] {
        let (fct, wifi_mb, lte_mb) = download(proto);
        println!(
            "{:>13}  {:>7.1} s  {:>6.1} MB  {:>6.1} MB  {:>5.1} Mb/s",
            proto,
            fct,
            wifi_mb,
            lte_mb,
            FILE_BYTES as f64 * 8.0 / fct / 1e6
        );
    }
    println!(
        "\n(lower time is better; MPCC should ride out the random loss that stalls LIA/OLIA/Balia)"
    );
}
