//! A miniature of the paper's §7.4 data-center experiment: a 2-spine /
//! 4-ToR Clos fabric with ECMP, mixed flow sizes, 3 subflows per
//! connection, comparing flow completion times of MPCC and Cubic.
//!
//! ```sh
//! cargo run --release --example datacenter
//! ```

use mpcc_experiments::protocols;
use mpcc_metrics::Summary;
use mpcc_netsim::topology::{Clos, ClosConfig};
use mpcc_simcore::{SimDuration, SimTime};
use mpcc_transport::{MpReceiver, MpSender, SenderConfig, Workload};

/// (bytes, count-per-host, label)
const CLASSES: [(u64, usize, &str); 3] = [
    (10_000, 6, "10KB"),
    (1_000_000, 4, "1MB"),
    (25_000_000, 2, "25MB"),
];

fn run(proto: &str) -> Vec<Summary> {
    let mut clos = Clos::new(7, ClosConfig::default());
    let hosts = clos.hosts();
    // Deterministic all-to-all-ish workload: host h sends to (h + k) % hosts.
    let mut flows: Vec<(usize, usize, u64, usize)> = Vec::new();
    for src in 0..hosts {
        for (class, &(bytes, count, _)) in CLASSES.iter().enumerate() {
            for k in 0..count {
                let dst = (src + 1 + k) % hosts;
                if dst != src {
                    flows.push((src, dst, bytes, class));
                }
            }
        }
    }
    let paths: Vec<_> = flows
        .iter()
        .map(|&(src, dst, _, _)| clos.subflow_paths(src, dst, 3))
        .collect();
    let mut sim = clos.sim;
    let mut senders = Vec::new();
    for (i, &(_, _, bytes, _)) in flows.iter().enumerate() {
        let recv = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
        let cc = protocols::make(proto, 1000 + i as u64);
        let cfg = SenderConfig {
            dst: recv,
            paths: paths[i].clone(),
            workload: Workload::Finite(bytes),
            scheduler: protocols::scheduler_for(proto),
            start_at: SimTime::ZERO,
            peer_buffer: 300_000_000,
        };
        senders.push(sim.add_endpoint(Box::new(MpSender::new(cfg, cc))));
    }
    // Run until everything completes.
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(60) {
        t += SimDuration::from_secs(1);
        sim.run_until(t);
        if senders
            .iter()
            .all(|&s| sim.endpoint::<MpSender>(s).is_complete())
        {
            break;
        }
    }
    let mut fcts: Vec<Vec<f64>> = vec![Vec::new(); CLASSES.len()];
    for (i, &(_, _, _, class)) in flows.iter().enumerate() {
        if let Some(d) = sim.endpoint::<MpSender>(senders[i]).fct() {
            fcts[class].push(d.as_secs_f64() * 1000.0);
        }
    }
    fcts.iter().map(|v| Summary::of(v)).collect()
}

fn main() {
    println!("Clos fabric: 2 spines, 4 ToRs, 8 hosts, 2.5 Gb/s links, 3 subflows per connection\n");
    println!(
        "{:>13}  {:>7}  {:>18}  {:>18}  {:>18}",
        "protocol", "", "10KB flows", "1MB flows", "25MB flows"
    );
    println!(
        "{:>13}  {:>7}  {:>8} {:>9}  {:>8} {:>9}  {:>8} {:>9}",
        "", "", "median", "p95", "median", "p95", "median", "p95"
    );
    for proto in ["mpcc-latency", "mpcc-loss", "cubic", "lia", "balia"] {
        let s = run(proto);
        println!(
            "{:>13}  FCT ms  {:>8.1} {:>9.1}  {:>8.1} {:>9.1}  {:>8.1} {:>9.1}",
            proto,
            s[0].median(),
            s[0].percentile(95.0),
            s[1].median(),
            s[1].percentile(95.0),
            s[2].median(),
            s[2].percentile(95.0),
        );
    }
    println!("\n(the paper finds MPCC wins on long flows but lags on short ones — §7.4)");
}
