//! Application-limited (streaming) traffic: a 6 Mb/s "video" stream over
//! WiFi+LTE, showing how MPCC behaves when the application, not the
//! network, is the bottleneck (the open evaluation of the paper's §9),
//! and how a mid-stream WiFi outage shifts traffic to LTE.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use mpcc::{Mpcc, MpccConfig};
use mpcc_netsim::fault::FaultPlan;
use mpcc_netsim::link::LinkParams;
use mpcc_netsim::topology::parallel_links;
use mpcc_simcore::{Rate, SimDuration, SimTime};
use mpcc_transport::{MpReceiver, MpSender, SchedulerKind, SenderConfig, Workload};

fn main() {
    let wifi = LinkParams {
        capacity: Rate::from_mbps(30.0),
        delay: SimDuration::from_millis(15),
        buffer: 120_000,
        random_loss: 0.003,
        faults: FaultPlan::NONE,
    };
    let lte = LinkParams {
        capacity: Rate::from_mbps(18.0),
        delay: SimDuration::from_millis(55),
        buffer: 600_000,
        random_loss: 0.008,
        faults: FaultPlan::NONE,
    };
    let mut net = parallel_links(21, &[wifi, lte]);
    let p_wifi = net.path(0);
    let p_lte = net.path(1);
    let mut sim = net.sim;

    // WiFi degrades badly between t = 20 s and t = 40 s (e.g. walking away
    // from the access point), then recovers.
    sim.schedule_link_change(
        SimTime::from_secs(20),
        net.links[0],
        LinkParams {
            capacity: Rate::from_mbps(1.0),
            random_loss: 0.05,
            ..wifi
        },
    );
    sim.schedule_link_change(SimTime::from_secs(40), net.links[0], wifi);

    let receiver = sim.add_endpoint(Box::new(MpReceiver::paper_default()));
    let cfg = SenderConfig {
        dst: receiver,
        paths: vec![p_wifi, p_lte],
        // 750 KB per second ≈ a 6 Mb/s video stream.
        workload: Workload::Paced {
            burst: 750_000,
            interval: SimDuration::from_secs(1),
        },
        scheduler: SchedulerKind::paper_rate_based(),
        start_at: SimTime::ZERO,
        peer_buffer: 300_000_000,
    };
    let cc = Mpcc::new(MpccConfig::latency().with_seed(3));
    let sender = sim.add_endpoint(Box::new(MpSender::new(cfg, Box::new(cc))));

    println!("6 Mb/s stream over WiFi+LTE; WiFi degrades during t = 20..40 s\n");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>10}  {:>9}",
        "t", "delivered", "via WiFi", "via LTE", "backlog"
    );
    let mut last = (0u64, 0u64, 0u64);
    for sec in (5..=60u64).step_by(5) {
        let now = SimTime::from_secs(sec);
        sim.run_until(now);
        let s = sim.endpoint::<MpSender>(sender);
        let acked = s.data_acked();
        let wifi_b = s.subflow_stats(0, now).delivered_bytes;
        let lte_b = s.subflow_stats(1, now).delivered_bytes;
        // Backlog: released but not yet delivered (stream falling behind).
        let released = 750_000 * sec;
        println!(
            "{:>3}s  {:>7.2} Mb/s  {:>5.2} Mb/s  {:>5.2} Mb/s  {:>6.1} KB",
            sec,
            (acked - last.0) as f64 * 8.0 / 5.0 / 1e6,
            (wifi_b - last.1) as f64 * 8.0 / 5.0 / 1e6,
            (lte_b - last.2) as f64 * 8.0 / 5.0 / 1e6,
            released.saturating_sub(acked) as f64 / 1e3,
        );
        last = (acked, wifi_b, lte_b);
    }
    println!("\n(during the outage the stream should ride on LTE; backlog must stay bounded)");
}
