/root/repo/target/debug/examples/datacenter-4737391b5366ef44.d: examples/datacenter.rs Cargo.toml

/root/repo/target/debug/examples/libdatacenter-4737391b5366ef44.rmeta: examples/datacenter.rs Cargo.toml

examples/datacenter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
