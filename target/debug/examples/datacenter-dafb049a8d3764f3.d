/root/repo/target/debug/examples/datacenter-dafb049a8d3764f3.d: examples/datacenter.rs

/root/repo/target/debug/examples/datacenter-dafb049a8d3764f3: examples/datacenter.rs

examples/datacenter.rs:
