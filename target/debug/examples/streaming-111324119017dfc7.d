/root/repo/target/debug/examples/streaming-111324119017dfc7.d: examples/streaming.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming-111324119017dfc7.rmeta: examples/streaming.rs Cargo.toml

examples/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
