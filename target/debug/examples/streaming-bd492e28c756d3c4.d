/root/repo/target/debug/examples/streaming-bd492e28c756d3c4.d: examples/streaming.rs

/root/repo/target/debug/examples/streaming-bd492e28c756d3c4: examples/streaming.rs

examples/streaming.rs:
