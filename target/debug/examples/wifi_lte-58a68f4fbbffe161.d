/root/repo/target/debug/examples/wifi_lte-58a68f4fbbffe161.d: examples/wifi_lte.rs Cargo.toml

/root/repo/target/debug/examples/libwifi_lte-58a68f4fbbffe161.rmeta: examples/wifi_lte.rs Cargo.toml

examples/wifi_lte.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
