/root/repo/target/debug/examples/quickstart-b95052ff1a239a1b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b95052ff1a239a1b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
