/root/repo/target/debug/examples/lossy_link-9c02d12f0dead90e.d: examples/lossy_link.rs Cargo.toml

/root/repo/target/debug/examples/liblossy_link-9c02d12f0dead90e.rmeta: examples/lossy_link.rs Cargo.toml

examples/lossy_link.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
