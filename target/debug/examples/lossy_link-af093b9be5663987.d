/root/repo/target/debug/examples/lossy_link-af093b9be5663987.d: examples/lossy_link.rs

/root/repo/target/debug/examples/lossy_link-af093b9be5663987: examples/lossy_link.rs

examples/lossy_link.rs:
