/root/repo/target/debug/examples/wifi_lte-a68cac54ef991228.d: examples/wifi_lte.rs

/root/repo/target/debug/examples/wifi_lte-a68cac54ef991228: examples/wifi_lte.rs

examples/wifi_lte.rs:
