/root/repo/target/debug/examples/quickstart-265c1a137ac98cd6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-265c1a137ac98cd6: examples/quickstart.rs

examples/quickstart.rs:
