/root/repo/target/debug/deps/smoke_e2e-832f8b61cd6ea5bb.d: tests/smoke_e2e.rs

/root/repo/target/debug/deps/smoke_e2e-832f8b61cd6ea5bb: tests/smoke_e2e.rs

tests/smoke_e2e.rs:
