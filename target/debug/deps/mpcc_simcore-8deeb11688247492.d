/root/repo/target/debug/deps/mpcc_simcore-8deeb11688247492.d: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

/root/repo/target/debug/deps/libmpcc_simcore-8deeb11688247492.rlib: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

/root/repo/target/debug/deps/libmpcc_simcore-8deeb11688247492.rmeta: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
crates/simcore/src/units.rs:
