/root/repo/target/debug/deps/mpcc_simcore-71b61a4f6ccad3fd.d: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_simcore-71b61a4f6ccad3fd.rmeta: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
crates/simcore/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
