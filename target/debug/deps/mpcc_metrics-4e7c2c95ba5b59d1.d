/root/repo/target/debug/deps/mpcc_metrics-4e7c2c95ba5b59d1.d: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_metrics-4e7c2c95ba5b59d1.rmeta: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/series.rs:
crates/metrics/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
