/root/repo/target/debug/deps/mpcc_suite-02c2b67b61f844e9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_suite-02c2b67b61f844e9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
