/root/repo/target/debug/deps/controllers-532778fdccc09e27.d: crates/bench/benches/controllers.rs Cargo.toml

/root/repo/target/debug/deps/libcontrollers-532778fdccc09e27.rmeta: crates/bench/benches/controllers.rs Cargo.toml

crates/bench/benches/controllers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
