/root/repo/target/debug/deps/theory_properties-cd2e4454ce8a240b.d: tests/theory_properties.rs

/root/repo/target/debug/deps/theory_properties-cd2e4454ce8a240b: tests/theory_properties.rs

tests/theory_properties.rs:
