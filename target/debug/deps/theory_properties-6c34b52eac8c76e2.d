/root/repo/target/debug/deps/theory_properties-6c34b52eac8c76e2.d: tests/theory_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtheory_properties-6c34b52eac8c76e2.rmeta: tests/theory_properties.rs Cargo.toml

tests/theory_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
