/root/repo/target/debug/deps/mpcc_suite-006341ad0db4d9b6.d: src/lib.rs

/root/repo/target/debug/deps/mpcc_suite-006341ad0db4d9b6: src/lib.rs

src/lib.rs:
