/root/repo/target/debug/deps/mpcc_metrics-30f61a2804dbb6c8.d: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libmpcc_metrics-30f61a2804dbb6c8.rlib: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libmpcc_metrics-30f61a2804dbb6c8.rmeta: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/series.rs:
crates/metrics/src/stats.rs:
