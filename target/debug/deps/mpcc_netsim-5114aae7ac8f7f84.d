/root/repo/target/debug/deps/mpcc_netsim-5114aae7ac8f7f84.d: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libmpcc_netsim-5114aae7ac8f7f84.rlib: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libmpcc_netsim-5114aae7ac8f7f84.rmeta: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/network.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
