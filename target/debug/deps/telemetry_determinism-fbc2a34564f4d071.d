/root/repo/target/debug/deps/telemetry_determinism-fbc2a34564f4d071.d: tests/telemetry_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_determinism-fbc2a34564f4d071.rmeta: tests/telemetry_determinism.rs Cargo.toml

tests/telemetry_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
