/root/repo/target/debug/deps/mpcc_bench-bda94b112c992ba0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmpcc_bench-bda94b112c992ba0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmpcc_bench-bda94b112c992ba0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
