/root/repo/target/debug/deps/mpcc_experiments-d807dfdea9428a14.d: crates/experiments/src/lib.rs crates/experiments/src/output.rs crates/experiments/src/protocols.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios/mod.rs crates/experiments/src/scenarios/ablation.rs crates/experiments/src/scenarios/fig10.rs crates/experiments/src/scenarios/fig11.rs crates/experiments/src/scenarios/fig12_13.rs crates/experiments/src/scenarios/fig14_15.rs crates/experiments/src/scenarios/fig16_17.rs crates/experiments/src/scenarios/fig19.rs crates/experiments/src/scenarios/fig2.rs crates/experiments/src/scenarios/fig5_6.rs crates/experiments/src/scenarios/fig7_8.rs crates/experiments/src/scenarios/fig9.rs crates/experiments/src/scenarios/sched.rs

/root/repo/target/debug/deps/libmpcc_experiments-d807dfdea9428a14.rlib: crates/experiments/src/lib.rs crates/experiments/src/output.rs crates/experiments/src/protocols.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios/mod.rs crates/experiments/src/scenarios/ablation.rs crates/experiments/src/scenarios/fig10.rs crates/experiments/src/scenarios/fig11.rs crates/experiments/src/scenarios/fig12_13.rs crates/experiments/src/scenarios/fig14_15.rs crates/experiments/src/scenarios/fig16_17.rs crates/experiments/src/scenarios/fig19.rs crates/experiments/src/scenarios/fig2.rs crates/experiments/src/scenarios/fig5_6.rs crates/experiments/src/scenarios/fig7_8.rs crates/experiments/src/scenarios/fig9.rs crates/experiments/src/scenarios/sched.rs

/root/repo/target/debug/deps/libmpcc_experiments-d807dfdea9428a14.rmeta: crates/experiments/src/lib.rs crates/experiments/src/output.rs crates/experiments/src/protocols.rs crates/experiments/src/runner.rs crates/experiments/src/scenarios/mod.rs crates/experiments/src/scenarios/ablation.rs crates/experiments/src/scenarios/fig10.rs crates/experiments/src/scenarios/fig11.rs crates/experiments/src/scenarios/fig12_13.rs crates/experiments/src/scenarios/fig14_15.rs crates/experiments/src/scenarios/fig16_17.rs crates/experiments/src/scenarios/fig19.rs crates/experiments/src/scenarios/fig2.rs crates/experiments/src/scenarios/fig5_6.rs crates/experiments/src/scenarios/fig7_8.rs crates/experiments/src/scenarios/fig9.rs crates/experiments/src/scenarios/sched.rs

crates/experiments/src/lib.rs:
crates/experiments/src/output.rs:
crates/experiments/src/protocols.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenarios/mod.rs:
crates/experiments/src/scenarios/ablation.rs:
crates/experiments/src/scenarios/fig10.rs:
crates/experiments/src/scenarios/fig11.rs:
crates/experiments/src/scenarios/fig12_13.rs:
crates/experiments/src/scenarios/fig14_15.rs:
crates/experiments/src/scenarios/fig16_17.rs:
crates/experiments/src/scenarios/fig19.rs:
crates/experiments/src/scenarios/fig2.rs:
crates/experiments/src/scenarios/fig5_6.rs:
crates/experiments/src/scenarios/fig7_8.rs:
crates/experiments/src/scenarios/fig9.rs:
crates/experiments/src/scenarios/sched.rs:
