/root/repo/target/debug/deps/figures-9ef00a8ff1948a41.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-9ef00a8ff1948a41.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
