/root/repo/target/debug/deps/transport_invariants-933cf9a36a116462.d: tests/transport_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_invariants-933cf9a36a116462.rmeta: tests/transport_invariants.rs Cargo.toml

tests/transport_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
