/root/repo/target/debug/deps/smoke_e2e-b9fcb9c3c2cc2c8c.d: tests/smoke_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke_e2e-b9fcb9c3c2cc2c8c.rmeta: tests/smoke_e2e.rs Cargo.toml

tests/smoke_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
