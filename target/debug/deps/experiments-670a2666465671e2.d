/root/repo/target/debug/deps/experiments-670a2666465671e2.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-670a2666465671e2.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
