/root/repo/target/debug/deps/mpcc_bench-895fafac75d3a9fe.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_bench-895fafac75d3a9fe.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
