/root/repo/target/debug/deps/mpcc_telemetry-ff759e74abe9314c.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_telemetry-ff759e74abe9314c.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
