/root/repo/target/debug/deps/ablations-38260441ac40273f.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-38260441ac40273f.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
