/root/repo/target/debug/deps/mpcc_telemetry-3718c97691cced18.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

/root/repo/target/debug/deps/libmpcc_telemetry-3718c97691cced18.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

/root/repo/target/debug/deps/libmpcc_telemetry-3718c97691cced18.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/stats.rs:
