/root/repo/target/debug/deps/fairness_convergence-18380d4ed8d25488.d: tests/fairness_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfairness_convergence-18380d4ed8d25488.rmeta: tests/fairness_convergence.rs Cargo.toml

tests/fairness_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
