/root/repo/target/debug/deps/mpcc_transport-466a8eedfee0d4cc.d: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

/root/repo/target/debug/deps/libmpcc_transport-466a8eedfee0d4cc.rlib: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

/root/repo/target/debug/deps/libmpcc_transport-466a8eedfee0d4cc.rmeta: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

crates/transport/src/lib.rs:
crates/transport/src/connection.rs:
crates/transport/src/controller.rs:
crates/transport/src/mi.rs:
crates/transport/src/ranges.rs:
crates/transport/src/receiver.rs:
crates/transport/src/rtt.rs:
crates/transport/src/sack.rs:
crates/transport/src/scheduler.rs:
crates/transport/src/sender.rs:
crates/transport/src/subflow.rs:
