/root/repo/target/debug/deps/scenarios_e2e-367915384e1670c9.d: tests/scenarios_e2e.rs

/root/repo/target/debug/deps/scenarios_e2e-367915384e1670c9: tests/scenarios_e2e.rs

tests/scenarios_e2e.rs:
