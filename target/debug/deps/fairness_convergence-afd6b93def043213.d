/root/repo/target/debug/deps/fairness_convergence-afd6b93def043213.d: tests/fairness_convergence.rs

/root/repo/target/debug/deps/fairness_convergence-afd6b93def043213: tests/fairness_convergence.rs

tests/fairness_convergence.rs:
