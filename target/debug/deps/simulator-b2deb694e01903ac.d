/root/repo/target/debug/deps/simulator-b2deb694e01903ac.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-b2deb694e01903ac.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
