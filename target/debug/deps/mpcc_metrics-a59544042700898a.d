/root/repo/target/debug/deps/mpcc_metrics-a59544042700898a.d: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_metrics-a59544042700898a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/series.rs:
crates/metrics/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
