/root/repo/target/debug/deps/mpcc_suite-88780ce89376a124.d: src/lib.rs

/root/repo/target/debug/deps/libmpcc_suite-88780ce89376a124.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpcc_suite-88780ce89376a124.rmeta: src/lib.rs

src/lib.rs:
