/root/repo/target/debug/deps/scenarios_e2e-89e989db6527bbb1.d: tests/scenarios_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libscenarios_e2e-89e989db6527bbb1.rmeta: tests/scenarios_e2e.rs Cargo.toml

tests/scenarios_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
