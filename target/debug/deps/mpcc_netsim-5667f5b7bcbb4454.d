/root/repo/target/debug/deps/mpcc_netsim-5667f5b7bcbb4454.d: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_netsim-5667f5b7bcbb4454.rmeta: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/network.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
