/root/repo/target/debug/deps/mpcc_cc-85013761602e7e40.d: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

/root/repo/target/debug/deps/libmpcc_cc-85013761602e7e40.rlib: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

/root/repo/target/debug/deps/libmpcc_cc-85013761602e7e40.rmeta: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

crates/cc/src/lib.rs:
crates/cc/src/balia.rs:
crates/cc/src/bbr.rs:
crates/cc/src/coupled.rs:
crates/cc/src/cubic.rs:
crates/cc/src/lia.rs:
crates/cc/src/mpcubic.rs:
crates/cc/src/olia.rs:
crates/cc/src/reno.rs:
crates/cc/src/uncoupled.rs:
crates/cc/src/window.rs:
crates/cc/src/wvegas.rs:
