/root/repo/target/debug/deps/experiments-9bf1b36a1be5baa9.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-9bf1b36a1be5baa9.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
