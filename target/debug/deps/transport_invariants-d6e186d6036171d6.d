/root/repo/target/debug/deps/transport_invariants-d6e186d6036171d6.d: tests/transport_invariants.rs

/root/repo/target/debug/deps/transport_invariants-d6e186d6036171d6: tests/transport_invariants.rs

tests/transport_invariants.rs:
