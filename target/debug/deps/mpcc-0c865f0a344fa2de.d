/root/repo/target/debug/deps/mpcc-0c865f0a344fa2de.d: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc-0c865f0a344fa2de.rmeta: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/connection_level.rs:
crates/core/src/controller/mod.rs:
crates/core/src/controller/state.rs:
crates/core/src/theory/mod.rs:
crates/core/src/theory/fluid.rs:
crates/core/src/theory/lmmf.rs:
crates/core/src/theory/maxflow.rs:
crates/core/src/utility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
