/root/repo/target/debug/deps/mpcc-3279e11eee0db693.d: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs

/root/repo/target/debug/deps/libmpcc-3279e11eee0db693.rlib: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs

/root/repo/target/debug/deps/libmpcc-3279e11eee0db693.rmeta: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs

crates/core/src/lib.rs:
crates/core/src/connection_level.rs:
crates/core/src/controller/mod.rs:
crates/core/src/controller/state.rs:
crates/core/src/theory/mod.rs:
crates/core/src/theory/fluid.rs:
crates/core/src/theory/lmmf.rs:
crates/core/src/theory/maxflow.rs:
crates/core/src/utility.rs:
