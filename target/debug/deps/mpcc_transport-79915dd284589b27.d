/root/repo/target/debug/deps/mpcc_transport-79915dd284589b27.d: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_transport-79915dd284589b27.rmeta: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/connection.rs:
crates/transport/src/controller.rs:
crates/transport/src/mi.rs:
crates/transport/src/ranges.rs:
crates/transport/src/receiver.rs:
crates/transport/src/rtt.rs:
crates/transport/src/sack.rs:
crates/transport/src/scheduler.rs:
crates/transport/src/sender.rs:
crates/transport/src/subflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
