/root/repo/target/debug/deps/mpcc_cc-f1251b144ab3ca88.d: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_cc-f1251b144ab3ca88.rmeta: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs Cargo.toml

crates/cc/src/lib.rs:
crates/cc/src/balia.rs:
crates/cc/src/bbr.rs:
crates/cc/src/coupled.rs:
crates/cc/src/cubic.rs:
crates/cc/src/lia.rs:
crates/cc/src/mpcubic.rs:
crates/cc/src/olia.rs:
crates/cc/src/reno.rs:
crates/cc/src/uncoupled.rs:
crates/cc/src/window.rs:
crates/cc/src/wvegas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
