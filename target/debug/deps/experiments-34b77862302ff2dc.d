/root/repo/target/debug/deps/experiments-34b77862302ff2dc.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/experiments-34b77862302ff2dc: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
