/root/repo/target/debug/deps/telemetry_determinism-60a0fa4268f81449.d: tests/telemetry_determinism.rs

/root/repo/target/debug/deps/telemetry_determinism-60a0fa4268f81449: tests/telemetry_determinism.rs

tests/telemetry_determinism.rs:
