/root/repo/target/debug/deps/mpcc_simcore-327a77a1afe87580.d: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_simcore-327a77a1afe87580.rmeta: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
crates/simcore/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
