/root/repo/target/debug/deps/mpcc_suite-d242fc5d409a6789.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_suite-d242fc5d409a6789.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
