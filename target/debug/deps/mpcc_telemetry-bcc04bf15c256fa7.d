/root/repo/target/debug/deps/mpcc_telemetry-bcc04bf15c256fa7.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_telemetry-bcc04bf15c256fa7.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
