/root/repo/target/debug/deps/mpcc_bench-a7fcb66ce41c00d2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpcc_bench-a7fcb66ce41c00d2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
