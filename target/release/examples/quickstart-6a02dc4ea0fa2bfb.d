/root/repo/target/release/examples/quickstart-6a02dc4ea0fa2bfb.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6a02dc4ea0fa2bfb: examples/quickstart.rs

examples/quickstart.rs:
