/root/repo/target/release/examples/lossy_link-2f9e6e4dc0cd5f75.d: examples/lossy_link.rs

/root/repo/target/release/examples/lossy_link-2f9e6e4dc0cd5f75: examples/lossy_link.rs

examples/lossy_link.rs:
