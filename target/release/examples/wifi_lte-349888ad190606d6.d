/root/repo/target/release/examples/wifi_lte-349888ad190606d6.d: examples/wifi_lte.rs

/root/repo/target/release/examples/wifi_lte-349888ad190606d6: examples/wifi_lte.rs

examples/wifi_lte.rs:
