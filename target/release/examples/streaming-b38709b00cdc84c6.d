/root/repo/target/release/examples/streaming-b38709b00cdc84c6.d: examples/streaming.rs

/root/repo/target/release/examples/streaming-b38709b00cdc84c6: examples/streaming.rs

examples/streaming.rs:
