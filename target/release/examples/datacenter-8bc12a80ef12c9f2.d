/root/repo/target/release/examples/datacenter-8bc12a80ef12c9f2.d: examples/datacenter.rs

/root/repo/target/release/examples/datacenter-8bc12a80ef12c9f2: examples/datacenter.rs

examples/datacenter.rs:
