/root/repo/target/release/deps/smoke_e2e-8a975866efab66d4.d: tests/smoke_e2e.rs

/root/repo/target/release/deps/smoke_e2e-8a975866efab66d4: tests/smoke_e2e.rs

tests/smoke_e2e.rs:
