/root/repo/target/release/deps/mpcc_metrics-ced6641d999d3dd4.d: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/mpcc_metrics-ced6641d999d3dd4: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/series.rs:
crates/metrics/src/stats.rs:
