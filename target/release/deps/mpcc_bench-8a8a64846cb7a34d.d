/root/repo/target/release/deps/mpcc_bench-8a8a64846cb7a34d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmpcc_bench-8a8a64846cb7a34d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmpcc_bench-8a8a64846cb7a34d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
