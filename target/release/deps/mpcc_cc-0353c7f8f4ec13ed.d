/root/repo/target/release/deps/mpcc_cc-0353c7f8f4ec13ed.d: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

/root/repo/target/release/deps/mpcc_cc-0353c7f8f4ec13ed: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

crates/cc/src/lib.rs:
crates/cc/src/balia.rs:
crates/cc/src/bbr.rs:
crates/cc/src/coupled.rs:
crates/cc/src/cubic.rs:
crates/cc/src/lia.rs:
crates/cc/src/mpcubic.rs:
crates/cc/src/olia.rs:
crates/cc/src/reno.rs:
crates/cc/src/uncoupled.rs:
crates/cc/src/window.rs:
crates/cc/src/wvegas.rs:
