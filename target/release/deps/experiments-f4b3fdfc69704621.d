/root/repo/target/release/deps/experiments-f4b3fdfc69704621.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/experiments-f4b3fdfc69704621: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
