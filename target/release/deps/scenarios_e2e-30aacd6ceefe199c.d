/root/repo/target/release/deps/scenarios_e2e-30aacd6ceefe199c.d: tests/scenarios_e2e.rs

/root/repo/target/release/deps/scenarios_e2e-30aacd6ceefe199c: tests/scenarios_e2e.rs

tests/scenarios_e2e.rs:
