/root/repo/target/release/deps/mpcc_suite-16ca8d471074393e.d: src/lib.rs

/root/repo/target/release/deps/libmpcc_suite-16ca8d471074393e.rlib: src/lib.rs

/root/repo/target/release/deps/libmpcc_suite-16ca8d471074393e.rmeta: src/lib.rs

src/lib.rs:
