/root/repo/target/release/deps/mpcc_telemetry-7ead27a6c411ba17.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

/root/repo/target/release/deps/mpcc_telemetry-7ead27a6c411ba17: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/stats.rs:
