/root/repo/target/release/deps/mpcc_bench-64e2fd187e93873c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/mpcc_bench-64e2fd187e93873c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
