/root/repo/target/release/deps/theory_properties-8b5642941418f2a2.d: tests/theory_properties.rs

/root/repo/target/release/deps/theory_properties-8b5642941418f2a2: tests/theory_properties.rs

tests/theory_properties.rs:
