/root/repo/target/release/deps/mpcc-3d7ac81ed1fe774e.d: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs

/root/repo/target/release/deps/mpcc-3d7ac81ed1fe774e: crates/core/src/lib.rs crates/core/src/connection_level.rs crates/core/src/controller/mod.rs crates/core/src/controller/state.rs crates/core/src/theory/mod.rs crates/core/src/theory/fluid.rs crates/core/src/theory/lmmf.rs crates/core/src/theory/maxflow.rs crates/core/src/utility.rs

crates/core/src/lib.rs:
crates/core/src/connection_level.rs:
crates/core/src/controller/mod.rs:
crates/core/src/controller/state.rs:
crates/core/src/theory/mod.rs:
crates/core/src/theory/fluid.rs:
crates/core/src/theory/lmmf.rs:
crates/core/src/theory/maxflow.rs:
crates/core/src/utility.rs:
