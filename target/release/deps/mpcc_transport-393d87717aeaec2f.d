/root/repo/target/release/deps/mpcc_transport-393d87717aeaec2f.d: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

/root/repo/target/release/deps/mpcc_transport-393d87717aeaec2f: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

crates/transport/src/lib.rs:
crates/transport/src/connection.rs:
crates/transport/src/controller.rs:
crates/transport/src/mi.rs:
crates/transport/src/ranges.rs:
crates/transport/src/receiver.rs:
crates/transport/src/rtt.rs:
crates/transport/src/sack.rs:
crates/transport/src/scheduler.rs:
crates/transport/src/sender.rs:
crates/transport/src/subflow.rs:
