/root/repo/target/release/deps/mpcc_cc-1babfd3a4a1aafd4.d: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

/root/repo/target/release/deps/libmpcc_cc-1babfd3a4a1aafd4.rlib: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

/root/repo/target/release/deps/libmpcc_cc-1babfd3a4a1aafd4.rmeta: crates/cc/src/lib.rs crates/cc/src/balia.rs crates/cc/src/bbr.rs crates/cc/src/coupled.rs crates/cc/src/cubic.rs crates/cc/src/lia.rs crates/cc/src/mpcubic.rs crates/cc/src/olia.rs crates/cc/src/reno.rs crates/cc/src/uncoupled.rs crates/cc/src/window.rs crates/cc/src/wvegas.rs

crates/cc/src/lib.rs:
crates/cc/src/balia.rs:
crates/cc/src/bbr.rs:
crates/cc/src/coupled.rs:
crates/cc/src/cubic.rs:
crates/cc/src/lia.rs:
crates/cc/src/mpcubic.rs:
crates/cc/src/olia.rs:
crates/cc/src/reno.rs:
crates/cc/src/uncoupled.rs:
crates/cc/src/window.rs:
crates/cc/src/wvegas.rs:
