/root/repo/target/release/deps/mpcc_transport-77fbb0868bd10d90.d: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

/root/repo/target/release/deps/libmpcc_transport-77fbb0868bd10d90.rlib: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

/root/repo/target/release/deps/libmpcc_transport-77fbb0868bd10d90.rmeta: crates/transport/src/lib.rs crates/transport/src/connection.rs crates/transport/src/controller.rs crates/transport/src/mi.rs crates/transport/src/ranges.rs crates/transport/src/receiver.rs crates/transport/src/rtt.rs crates/transport/src/sack.rs crates/transport/src/scheduler.rs crates/transport/src/sender.rs crates/transport/src/subflow.rs

crates/transport/src/lib.rs:
crates/transport/src/connection.rs:
crates/transport/src/controller.rs:
crates/transport/src/mi.rs:
crates/transport/src/ranges.rs:
crates/transport/src/receiver.rs:
crates/transport/src/rtt.rs:
crates/transport/src/sack.rs:
crates/transport/src/scheduler.rs:
crates/transport/src/sender.rs:
crates/transport/src/subflow.rs:
