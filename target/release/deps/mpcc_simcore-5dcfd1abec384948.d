/root/repo/target/release/deps/mpcc_simcore-5dcfd1abec384948.d: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

/root/repo/target/release/deps/mpcc_simcore-5dcfd1abec384948: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
crates/simcore/src/units.rs:
