/root/repo/target/release/deps/telemetry_determinism-108f8b1a03c79b5b.d: tests/telemetry_determinism.rs

/root/repo/target/release/deps/telemetry_determinism-108f8b1a03c79b5b: tests/telemetry_determinism.rs

tests/telemetry_determinism.rs:
