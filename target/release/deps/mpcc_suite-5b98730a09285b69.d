/root/repo/target/release/deps/mpcc_suite-5b98730a09285b69.d: src/lib.rs

/root/repo/target/release/deps/mpcc_suite-5b98730a09285b69: src/lib.rs

src/lib.rs:
