/root/repo/target/release/deps/experiments-1780883933163f09.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/experiments-1780883933163f09: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
