/root/repo/target/release/deps/fairness_convergence-c4763a98d0ff5e71.d: tests/fairness_convergence.rs

/root/repo/target/release/deps/fairness_convergence-c4763a98d0ff5e71: tests/fairness_convergence.rs

tests/fairness_convergence.rs:
