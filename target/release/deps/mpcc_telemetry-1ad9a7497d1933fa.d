/root/repo/target/release/deps/mpcc_telemetry-1ad9a7497d1933fa.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

/root/repo/target/release/deps/libmpcc_telemetry-1ad9a7497d1933fa.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

/root/repo/target/release/deps/libmpcc_telemetry-1ad9a7497d1933fa.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/sink.rs crates/telemetry/src/stats.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/stats.rs:
