/root/repo/target/release/deps/transport_invariants-9a29d57fff69bdc5.d: tests/transport_invariants.rs

/root/repo/target/release/deps/transport_invariants-9a29d57fff69bdc5: tests/transport_invariants.rs

tests/transport_invariants.rs:
