/root/repo/target/release/deps/mpcc_simcore-59bc9c1157b67b25.d: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

/root/repo/target/release/deps/libmpcc_simcore-59bc9c1157b67b25.rlib: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

/root/repo/target/release/deps/libmpcc_simcore-59bc9c1157b67b25.rmeta: crates/simcore/src/lib.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs crates/simcore/src/units.rs

crates/simcore/src/lib.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
crates/simcore/src/units.rs:
