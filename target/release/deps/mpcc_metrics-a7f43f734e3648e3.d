/root/repo/target/release/deps/mpcc_metrics-a7f43f734e3648e3.d: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libmpcc_metrics-a7f43f734e3648e3.rlib: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libmpcc_metrics-a7f43f734e3648e3.rmeta: crates/metrics/src/lib.rs crates/metrics/src/series.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/series.rs:
crates/metrics/src/stats.rs:
