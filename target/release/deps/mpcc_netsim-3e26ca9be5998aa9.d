/root/repo/target/release/deps/mpcc_netsim-3e26ca9be5998aa9.d: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/mpcc_netsim-3e26ca9be5998aa9: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/network.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
