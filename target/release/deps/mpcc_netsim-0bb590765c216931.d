/root/repo/target/release/deps/mpcc_netsim-0bb590765c216931.d: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libmpcc_netsim-0bb590765c216931.rlib: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libmpcc_netsim-0bb590765c216931.rmeta: crates/netsim/src/lib.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/network.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
